//! Microbenchmarks for the bounded-testing hot path's two dominant
//! primitives: instance snapshot/restore and compiled-plan scans.
//!
//! End-to-end synthesis time moves for many reasons; these benches isolate
//! the costs that value interning and plan compilation were built to shrink,
//! so a regression in snapshot or scan cost is visible even when wall-time
//! noise or search-trajectory changes mask it in `experiments`.

use criterion::{criterion_group, criterion_main, Criterion};
use dbir::ast::{JoinChain, Operand, Pred, Query};
use dbir::eval::{CompiledQuery, Env, Evaluator};
use dbir::schema::{QualifiedAttr, Schema};
use dbir::{Instance, Value};

fn schema() -> Schema {
    Schema::parse(
        "Product(pk pid: int, pname: string, price: int, descr: string, image: binary, weight: int)",
    )
    .unwrap()
}

/// A populated instance shaped like a bounded-testing snapshot at depth 2-3:
/// a handful of rows, string- and blob-heavy.
fn populated(rows: usize) -> (Schema, Instance) {
    let schema = schema();
    let mut instance = Instance::empty(&schema);
    for i in 0..rows {
        instance.insert(
            &"Product".into(),
            vec![
                Value::Int(i as i64),
                Value::str(format!("product-name-{}", i % 8)),
                Value::Int(100 + i as i64),
                Value::str(format!("a moderately long description string {}", i % 8)),
                Value::bytes([0xab, i as u8, 0xcd]),
                Value::Int(i as i64 % 50),
            ],
        );
    }
    (schema, instance)
}

fn bench_snapshots(c: &mut Criterion) {
    let mut group = c.benchmark_group("instance_snapshot");
    group.sample_size(20);
    for rows in [4usize, 64, 512] {
        let (_, instance) = populated(rows);
        // The DFS pattern: clone the parent snapshot, mutate the child,
        // drop it when the subtree is done.
        group.bench_function(format!("clone_mutate_drop/{rows}_rows"), |b| {
            b.iter(|| {
                let mut child = instance.clone();
                child.insert(
                    &"Product".into(),
                    vec![
                        Value::Int(-1),
                        Value::str("fresh"),
                        Value::Int(0),
                        Value::str("fresh-descr"),
                        Value::bytes([0u8]),
                        Value::Int(0),
                    ],
                );
                child
            })
        });
        group.bench_function(format!("approx_heap_bytes/{rows}_rows"), |b| {
            b.iter(|| instance.approx_heap_bytes())
        });
    }
    group.finish();
}

fn bench_scans(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_scan");
    group.sample_size(20);
    let (schema, instance) = populated(64);
    let query = Query::select(
        vec![
            QualifiedAttr::new("Product", "pname"),
            QualifiedAttr::new("Product", "price"),
        ],
        Pred::eq_value(
            QualifiedAttr::new("Product", "pid"),
            Operand::Value(Value::Int(7)),
        ),
        JoinChain::table("Product"),
    );
    let env = Env::new();
    let compiled = CompiledQuery::compile(&schema, &query, &env).expect("query compiles");
    group.bench_function("compiled_filter_scan", |b| {
        b.iter(|| {
            let rows = compiled.execute(&instance).expect("scan succeeds");
            assert_eq!(rows.len(), 1);
            rows
        })
    });
    // The AST interpreter as a reference point: re-resolves and re-compiles
    // the predicate per call.
    group.bench_function("interpreted_filter_scan", |b| {
        b.iter(|| {
            let mut evaluator = Evaluator::new(&schema);
            let rel = evaluator
                .eval_query(&query, &instance, &env)
                .expect("query evaluates");
            assert_eq!(rel.rows.len(), 1);
            rel
        })
    });
    group.finish();
}

criterion_group!(benches, bench_snapshots, bench_scans);
criterion_main!(benches);
