//! Microbenchmarks for the incremental-engine primitives: persistent SAT
//! model enumeration (vs. rebuilding the solver per blocking clause),
//! guarded speculative probes, and cross-candidate prefix-cache reuse.
//!
//! End-to-end synthesis time moves for many reasons; these benches isolate
//! the costs the persistent solver and the [`PrefixCache`] were built to
//! shrink, so a regression in either is visible even when wall-time noise
//! or search-trajectory changes mask it in `experiments`.
//!
//! [`PrefixCache`]: dbir::equiv::PrefixCache

use criterion::{criterion_group, criterion_main, Criterion};
use dbir::equiv::{compare_with_oracle_profiled, PrefixCache, SourceOracle, TestConfig};
use satsolver::{Lit, SolveResult, Solver, Var};

/// The sketch-shaped CNF the completion loop produces: `holes` one-hot
/// groups of `domain` variables each (at-least-one + pairwise at-most-one).
fn encode(solver: &mut Solver, holes: usize, domain: usize) -> Vec<Vec<Var>> {
    let mut groups = Vec::with_capacity(holes);
    for _ in 0..holes {
        let vars = solver.new_vars(domain);
        let at_least_one: Vec<Lit> = vars.iter().map(|&v| Lit::pos(v)).collect();
        solver.add_clause(&at_least_one);
        for i in 0..vars.len() {
            for j in (i + 1)..vars.len() {
                solver.add_clause(&[Lit::neg(vars[i]), Lit::neg(vars[j])]);
            }
        }
        groups.push(vars);
    }
    groups
}

fn blocking_clause(model: &satsolver::Model, groups: &[Vec<Var>]) -> Vec<Lit> {
    groups
        .iter()
        .flatten()
        .map(|&v| {
            if model.value(v) {
                Lit::neg(v)
            } else {
                Lit::pos(v)
            }
        })
        .collect()
}

/// Enumerates every model with one persistent solver, learning a blocking
/// clause per model — the incremental engine's inner loop.
fn enumerate_persistent(holes: usize, domain: usize) -> usize {
    let mut solver = Solver::new();
    let groups = encode(&mut solver, holes, domain);
    let mut models = 0;
    while let SolveResult::Sat(model) = solver.solve() {
        solver.add_clause(&blocking_clause(&model, &groups));
        models += 1;
    }
    models
}

/// The from-scratch baseline: replays the recorded blocking sequence into a
/// fresh solver before every solve (what the completion loop did before the
/// persistent solver).
fn enumerate_from_scratch(holes: usize, domain: usize) -> usize {
    let mut blocked: Vec<Vec<Lit>> = Vec::new();
    loop {
        let mut solver = Solver::new();
        let groups = encode(&mut solver, holes, domain);
        for clause in &blocked {
            solver.add_clause(clause);
        }
        match solver.solve() {
            SolveResult::Sat(model) => blocked.push(blocking_clause(&model, &groups)),
            SolveResult::Unsat => return blocked.len(),
        }
    }
}

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_model_enumeration");
    group.sample_size(10);
    // 3 holes x 4 values = 64 models; the shape of a small sketch.
    group.bench_function("persistent/3x4", |b| {
        b.iter(|| {
            let models = enumerate_persistent(3, 4);
            assert_eq!(models, 64);
            models
        })
    });
    group.bench_function("from_scratch/3x4", |b| {
        b.iter(|| {
            let models = enumerate_from_scratch(3, 4);
            assert_eq!(models, 64);
            models
        })
    });
    group.finish();
}

fn bench_speculative_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_speculative_probe");
    group.sample_size(10);
    // The speculation protocol: block the current model behind a guard
    // literal, probe under the guard assumption, then commit the guard.
    group.bench_function("guarded_probe_commit/3x4", |b| {
        b.iter(|| {
            let mut solver = Solver::new();
            let groups = encode(&mut solver, 3, 4);
            let mut models = 0;
            while let SolveResult::Sat(model) = solver.solve() {
                let guard = solver.new_var();
                let mut clause = blocking_clause(&model, &groups);
                clause.push(Lit::neg(guard));
                solver.add_clause(&clause);
                let _probe = solver.solve_with_assumptions(&[Lit::pos(guard)]);
                solver.add_clause(&[Lit::pos(guard)]);
                models += 1;
            }
            assert_eq!(models, 64);
            models
        })
    });
    group.finish();
}

fn bench_prefix_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefix_cache_reuse");
    group.sample_size(10);
    let benchmark = benchmarks::benchmark_by_name("Ambler-4").expect("benchmark exists");
    let oracle = SourceOracle::new(&benchmark.source_program, &benchmark.source_schema);
    let config = TestConfig::default();
    // Checking the source program against itself walks the full bound —
    // the worst case for prefix re-execution, the best case for the cache.
    group.bench_function("cold_no_cache", |b| {
        b.iter(|| {
            let report = compare_with_oracle_profiled(
                &oracle,
                &benchmark.source_program,
                &benchmark.source_schema,
                &config,
                None,
                None,
                None,
            );
            assert!(report.equivalent);
            report.sequences_tested
        })
    });
    group.bench_function("warm_shared_cache", |b| {
        let mut cache = PrefixCache::new();
        b.iter(|| {
            let report = compare_with_oracle_profiled(
                &oracle,
                &benchmark.source_program,
                &benchmark.source_schema,
                &config,
                None,
                None,
                Some(&mut cache),
            );
            assert!(report.equivalent);
            report.sequences_tested
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_enumeration,
    bench_speculative_probe,
    bench_prefix_cache
);
criterion_main!(benches);
