//! Criterion bench for Table 1 (main results): end-to-end synthesis time on
//! representative textbook benchmarks.
//!
//! The full 20-benchmark sweep (including the application-scale ones) is
//! produced by the `experiments` binary; Criterion runs here are kept to the
//! benchmarks that complete in well under a second per iteration so the
//! statistics are meaningful.

use bench::{config_for, run_table1};
use benchmarks::benchmark_by_name;
use criterion::{criterion_group, criterion_main, Criterion};
use migrator::SketchSolverKind;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_synthesis");
    group.sample_size(10);
    for name in ["Ambler-4", "Oracle-1", "Ambler-1", "Ambler-7"] {
        let benchmark = benchmark_by_name(name).expect("benchmark exists");
        group.bench_function(name, |b| {
            b.iter(|| {
                let row = run_table1(&benchmark, SketchSolverKind::MfiGuided);
                assert!(row.succeeded);
                row
            })
        });
    }
    group.finish();

    // Pipeline-stage micro-benchmarks on the motivating example.
    let mut stages = c.benchmark_group("table1_stages");
    stages.sample_size(20);
    let benchmark = benchmark_by_name("Ambler-1").expect("benchmark exists");
    let config = config_for(&benchmark, SketchSolverKind::MfiGuided);
    stages.bench_function("value_correspondence", |b| {
        b.iter(|| {
            let mut enumerator = migrator::value_corr::VcEnumerator::new(
                &benchmark.source_program,
                &benchmark.source_schema,
                &benchmark.target_schema,
                &config.vc,
            );
            enumerator
                .next_correspondence()
                .expect("a correspondence exists")
        })
    });
    stages.bench_function("sketch_generation", |b| {
        let mut enumerator = migrator::value_corr::VcEnumerator::new(
            &benchmark.source_program,
            &benchmark.source_schema,
            &benchmark.target_schema,
            &config.vc,
        );
        let phi = enumerator.next_correspondence().unwrap();
        b.iter(|| {
            migrator::sketch_gen::generate_sketch(
                &benchmark.source_program,
                &phi,
                &benchmark.target_schema,
                &config.sketch,
            )
            .expect("sketch exists")
        })
    });
    stages.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
