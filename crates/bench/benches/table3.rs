//! Criterion bench for Table 3 (MFI-guided completion vs. symbolic
//! enumerative search): both solvers complete the same sketch; the paper's
//! claim is that MFI-based blocking needs far fewer candidates, which shows
//! up here as lower wall-clock time per solved sketch.

use benchmarks::benchmark_by_name;
use criterion::{criterion_group, criterion_main, Criterion};
use dbir::equiv::{SourceOracle, TestConfig};
use migrator::completion::{complete_sketch, BlockingStrategy, CompletionControls};
use migrator::sketch_gen::{generate_sketch, SketchGenConfig};
use migrator::value_corr::{VcConfig, VcEnumerator};

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_blocking_strategies");
    group.sample_size(10);
    for name in ["Ambler-1", "Ambler-7"] {
        let benchmark = benchmark_by_name(name).expect("benchmark exists");
        let mut enumerator = VcEnumerator::new(
            &benchmark.source_program,
            &benchmark.source_schema,
            &benchmark.target_schema,
            &VcConfig::default(),
        );
        let phi = enumerator.next_correspondence().unwrap();
        let sketch = generate_sketch(
            &benchmark.source_program,
            &phi,
            &benchmark.target_schema,
            &SketchGenConfig::default(),
        )
        .unwrap();
        for (label, strategy) in [
            ("mfi", BlockingStrategy::MinimumFailingInput),
            ("enumerative", BlockingStrategy::FullModel),
        ] {
            group.bench_function(format!("{name}/{label}"), |b| {
                b.iter(|| {
                    let oracle =
                        SourceOracle::new(&benchmark.source_program, &benchmark.source_schema);
                    complete_sketch(
                        &sketch,
                        &oracle,
                        &benchmark.target_schema,
                        &TestConfig::default(),
                        &TestConfig::default(),
                        strategy,
                        0,
                        CompletionControls::none(),
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
