//! Deterministic case generation, mirroring `proptest::test_runner`.

use std::ops::Range;

/// Configuration of a `proptest!` block, mirroring
/// `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 32 }
    }
}

/// A deterministic xorshift64* random stream.
///
/// Unlike the real proptest there is no persisted failure seed: the stream is
/// a pure function of the test name, so a failing case reproduces on every
/// run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a stream seeded from `name` (typically the test function's
    /// name).
    pub fn deterministic(name: &str) -> TestRng {
        // FNV-1a over the name, folded into a non-zero seed.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash | 1 }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64* (Vigna); period 2^64 - 1.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A boolean with probability one half.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A value uniform in `[0, bound)`; `bound` must be positive.
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant at test-generation scale.
        self.next_u64() % bound
    }

    /// A `usize` uniform in the (half-open) range; an empty range yields its
    /// start.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        if range.end <= range.start {
            return range.start;
        }
        range.start + self.u64_below((range.end - range.start) as u64) as usize
    }

    /// An `i64` uniform in the (half-open) range; an empty range yields its
    /// start.
    pub fn i64_in(&mut self, range: Range<i64>) -> i64 {
        if range.end <= range.start {
            return range.start;
        }
        let span = range.end.wrapping_sub(range.start) as u64;
        range.start.wrapping_add(self.u64_below(span) as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        let first_a: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let first_b: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let first_c: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(first_a, first_b);
        assert_ne!(first_a, first_c);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..200 {
            let u = rng.usize_in(3..7);
            assert!((3..7).contains(&u));
            let i = rng.i64_in(-5..5);
            assert!((-5..5).contains(&i));
        }
        assert_eq!(rng.usize_in(4..4), 4);
    }
}
