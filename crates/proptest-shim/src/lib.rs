//! Offline stand-in for the [proptest](https://docs.rs/proptest) framework,
//! exposing the subset of the API this workspace's property tests use.
//!
//! The real proptest crate is not vendored and builds must work without
//! network access. The shim keeps the same test sources compiling and
//! meaningful: each `proptest!` test runs its body for a configured number of
//! cases over values generated from a deterministic pseudo-random stream
//! (xorshift64*, fixed seed), so failures are reproducible. Shrinking is not
//! implemented — a failing case reports the assertion as-is.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Generation helpers for collections, mirroring `proptest::collection`.
pub mod collection {
    use std::collections::BTreeSet;
    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A collection-size specification: either an exact length or a
    /// half-open range, mirroring `proptest::collection::SizeRange`.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> SizeRange {
            SizeRange(exact..exact + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> SizeRange {
            SizeRange(range)
        }
    }

    /// Strategy for vectors with lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Creates a strategy producing `Vec`s of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into().0,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for ordered sets with target sizes drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Creates a strategy producing `BTreeSet`s of values from `element`.
    ///
    /// If the element strategy cannot produce enough distinct values the set
    /// may come out smaller than requested (the real proptest rejects such
    /// cases; the shim returns what it found after a bounded effort).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into().0,
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = rng.usize_in(self.size.clone());
            let mut set = BTreeSet::new();
            let mut attempts = 0;
            while set.len() < target && attempts < 64 * (target + 1) {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// The things almost every property test wants in scope, mirroring
/// `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Runs each declared test for the configured number of deterministic cases,
/// mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($config); $($rest)*);
    };
    (@expand ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for _case in 0..config.cases {
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, mirroring
/// `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body, mirroring
/// `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Skips the current case when its precondition fails, mirroring
/// `proptest::prop_assume!`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Chooses between same-typed strategies with the given relative weights,
/// mirroring the weighted form of `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![$(($weight as u64, $strat)),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![$((1u64, $strat)),+])
    };
}
