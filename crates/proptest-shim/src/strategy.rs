//! Value-generation strategies, mirroring `proptest::strategy`.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type, mirroring
/// `proptest::strategy::Strategy` (generation only — no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value from the random stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` derives from
    /// it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Always yields a clone of one value, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Weighted choice between same-typed strategies; the `prop_oneof!` macro
/// builds one of these.
#[derive(Debug, Clone)]
pub struct WeightedUnion<S> {
    options: Vec<(u64, S)>,
    total: u64,
}

impl<S: Strategy> WeightedUnion<S> {
    /// Creates a union; weights must not all be zero.
    pub fn new(options: Vec<(u64, S)>) -> WeightedUnion<S> {
        let total = options.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! requires a positive total weight");
        WeightedUnion { options, total }
    }
}

impl<S: Strategy> Strategy for WeightedUnion<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let mut ticket = rng.u64_below(self.total);
        for (weight, option) in &self.options {
            if ticket < *weight {
                return option.generate(rng);
            }
            ticket -= weight;
        }
        unreachable!("ticket below total weight")
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty => $method:ident as $cast:ty),+ $(,)?) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.$method(self.start as $cast..self.end as $cast) as $ty
                }
            }
        )+
    };
}

impl_range_strategy! {
    usize => usize_in as usize,
    u64 => i64_in as i64,
    u32 => i64_in as i64,
    u8 => i64_in as i64,
    i64 => i64_in as i64,
    i32 => i64_in as i64,
}

/// A pattern-string strategy (`"[a-z]{3,8}"`), supporting the regex subset
/// the workspace tests use: literal characters, one character class per
/// element, and `{n}` / `{m,n}` repetition.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            // One element: a character class or a literal character...
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unterminated class in pattern {self:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        set.extend((lo..=hi).filter(|c| c.is_ascii()));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            assert!(!alphabet.is_empty(), "empty class in pattern {self:?}");
            // ...followed by an optional repetition count.
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unterminated repetition in pattern {self:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("repetition lower bound"),
                        n.trim().parse().expect("repetition upper bound"),
                    ),
                    None => {
                        let n: usize = body.trim().parse().expect("repetition count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = rng.usize_in(min..max + 1);
            for _ in 0..count {
                let pick = rng.usize_in(0..alphabet.len());
                out.push(alphabet[pick]);
            }
        }
        out
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $index:tt),+)),+ $(,)?) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$index.generate(rng),)+)
                }
            }
        )+
    };
}

impl_tuple_strategy! {
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
}

/// A fixed-length heterogeneous-source vector of strategies generates a
/// vector of values, element by element.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// Types with a canonical whole-domain strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;

    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Uniform booleans.
#[derive(Debug, Clone, Copy)]
pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;

    fn arbitrary() -> BoolStrategy {
        BoolStrategy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection;

    #[test]
    fn pattern_strategy_matches_shape() {
        let mut rng = TestRng::deterministic("pattern");
        for _ in 0..100 {
            let s = "[a-z]{3,8}".generate(&mut rng);
            assert!((3..=8).contains(&s.len()), "bad length: {s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn literal_pattern_roundtrips() {
        let mut rng = TestRng::deterministic("literal");
        assert_eq!("abc".generate(&mut rng), "abc");
        let repeated = "x{4}".generate(&mut rng);
        assert_eq!(repeated, "xxxx");
    }

    #[test]
    fn oneof_respects_weights_loosely() {
        let union = crate::prop_oneof![3 => Just(true), 1 => Just(false)];
        let mut rng = TestRng::deterministic("oneof");
        let trues = (0..400).filter(|_| union.generate(&mut rng)).count();
        assert!(trues > 200, "weighted branch should dominate: {trues}");
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = TestRng::deterministic("collections");
        for _ in 0..50 {
            let v = collection::vec(0usize..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let s = collection::btree_set("[a-z]{3,8}", 2..5).generate(&mut rng);
            assert!(s.len() < 5);
        }
    }

    #[test]
    fn flat_map_threads_values() {
        let strat = (1usize..4).prop_flat_map(|n| collection::vec(Just(n), n..n + 1));
        let mut rng = TestRng::deterministic("flat_map");
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!(!v.is_empty());
            assert!(v.iter().all(|&x| x == v.len()));
        }
    }
}
