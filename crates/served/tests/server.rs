//! End-to-end tests of the job server: protocol, concurrency determinism,
//! budgets, cancellation and shutdown.

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use migrator::{CancelToken, SynthesisEvent, SynthesisObserver};
use pipeline::{run_job, JobSpec, Json, LineBus, LineBusSink, NdjsonWriter};
use served::{request, submit, wait_done, watch_into, Server, ServerConfig, ShutdownMode};

/// Serializes tests that set the global parpool thread limit.
fn limit_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const RENAME_SOURCE: &str = "CREATE TABLE Users (uid INTEGER PRIMARY KEY, nick TEXT);";
const RENAME_TARGET: &str = "CREATE TABLE Users (uid INTEGER PRIMARY KEY, handle TEXT);";
const RENAME_PROGRAM: &str = r#"
    update addUser(uid: int, nick: string)
        INSERT INTO Users VALUES (uid: uid, nick: nick);
    query getUser(uid: int)
        SELECT nick FROM Users WHERE uid = uid;
"#;

const MOVE_SOURCE: &str = "CREATE TABLE Album (album_id INTEGER PRIMARY KEY, title TEXT);";
const MOVE_TARGET: &str = "CREATE TABLE Record (album_id INTEGER PRIMARY KEY, title TEXT);";
const MOVE_PROGRAM: &str = r#"
    update addAlbum(id: int, title: string)
        INSERT INTO Album VALUES (album_id: id, title: title);
    query getAlbum(id: int)
        SELECT title FROM Album WHERE album_id = id;
"#;

fn rename_spec() -> JobSpec {
    JobSpec::new(RENAME_SOURCE, RENAME_TARGET, RENAME_PROGRAM)
}

fn move_spec() -> JobSpec {
    JobSpec::new(MOVE_SOURCE, MOVE_TARGET, MOVE_PROGRAM)
}

/// A spec built from one of the paper's benchmarks. `MathHotSpot` is
/// known-red under the standard config (a few seconds of genuinely
/// exhausted search) and long-running under `widened` — ideal raw
/// material for timeout and cancellation tests.
fn benchmark_spec(name: &str, config: &str) -> JobSpec {
    let benchmark = benchmarks::benchmark_by_name(name).expect("benchmark exists");
    let dialect = sqlbridge::Sqlite;
    let mut spec = JobSpec::new(
        sqlbridge::schema_to_ddl(&benchmark.source_schema, &dialect),
        sqlbridge::schema_to_ddl(&benchmark.target_schema, &dialect),
        dbir::pretty::program_to_string(&benchmark.source_program),
    );
    spec.config = config.to_string();
    spec.validate = false;
    spec
}

/// The serial reference: the exact NDJSON stream a server job must
/// reproduce — main observer channel only, terminal `run_finished`.
struct MainChannelOnly(Arc<NdjsonWriter>);

impl SynthesisObserver for MainChannelOnly {
    fn event(&self, event: &SynthesisEvent) {
        self.0.event(event);
    }

    fn speculation(&self, _event: &SynthesisEvent) {}
}

fn serial_stream(spec: &JobSpec) -> Vec<String> {
    let bus = Arc::new(LineBus::new());
    let writer = Arc::new(NdjsonWriter::new(Box::new(LineBusSink(Arc::clone(&bus)))));
    let report = run_job(
        spec,
        CancelToken::new(),
        Some(Arc::new(MainChannelOnly(Arc::clone(&writer)))),
        Some(writer.clone() as Arc<dyn pipeline::PipelineObserver>),
    );
    writer.finish(&report.outcome);
    bus.close();
    bus.lines()
}

fn watch_lines(addr: &str, id: u64) -> Vec<String> {
    let mut buffer = Vec::new();
    watch_into(addr, id, &mut buffer).expect("watch streams");
    String::from_utf8(buffer)
        .expect("utf-8 stream")
        .lines()
        .map(str::to_string)
        .collect()
}

fn status_of(addr: &str, id: u64) -> String {
    let reply = request(
        addr,
        &Json::object()
            .with("cmd", Json::str("status"))
            .with("id", Json::from(id as usize)),
    )
    .expect("status");
    reply
        .get("status")
        .and_then(Json::as_str)
        .expect("status field")
        .to_string()
}

fn wait_for_running(addr: &str, id: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while status_of(addr, id) != "running" {
        assert!(Instant::now() < deadline, "job {id} never started running");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn assert_valid_stream(lines: &[String], expected_outcome: &str) {
    assert!(!lines.is_empty(), "stream is empty");
    for (expected_seq, line) in lines.iter().enumerate() {
        let event = Json::parse(line).unwrap_or_else(|e| panic!("bad line `{line}`: {e}"));
        assert_eq!(
            event.get("seq").and_then(Json::as_i128),
            Some(expected_seq as i128),
            "seq gap at `{line}`"
        );
        assert!(event.get("type").and_then(Json::as_str).is_some());
    }
    let last = Json::parse(lines.last().expect("nonempty")).expect("terminal line parses");
    assert_eq!(
        last.get("type").and_then(Json::as_str),
        Some("run_finished")
    );
    assert_eq!(
        last.get("outcome").and_then(Json::as_str),
        Some(expected_outcome)
    );
}

#[test]
fn concurrent_jobs_stream_byte_identical_to_serial_runs() {
    let _guard = limit_lock();
    parpool::set_thread_limit(4);

    let specs = [rename_spec(), move_spec()];
    let reference: Vec<Vec<String>> = specs.iter().map(serial_stream).collect();

    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
    })
    .expect("server starts");
    let addr = server.addr().to_string();

    // Submit both jobs before either finishes queueing semantics, then
    // watch them from two concurrent subscriber threads.
    let ids: Vec<u64> = specs
        .iter()
        .map(|spec| submit(&addr, spec).expect("submit"))
        .collect();
    let watchers: Vec<_> = ids
        .iter()
        .map(|id| {
            let addr = addr.clone();
            let id = *id;
            std::thread::spawn(move || watch_lines(&addr, id))
        })
        .collect();
    let streams: Vec<Vec<String>> = watchers
        .into_iter()
        .map(|w| w.join().expect("watcher joins"))
        .collect();

    for ((spec, reference), watched) in specs.iter().zip(&reference).zip(&streams) {
        assert_valid_stream(watched, "solved");
        assert_eq!(
            reference, watched,
            "watched stream diverged from the serial run for {spec:?}"
        );
    }

    // A watcher joining after completion replays the identical stream.
    let replay = watch_lines(&addr, ids[0]);
    assert_eq!(replay, streams[0]);

    server.shutdown(ShutdownMode::Drain);
    server.wait();
    parpool::set_thread_limit(0);
}

#[test]
fn budget_overrun_reports_timeout_with_forensics() {
    let mut spec = benchmark_spec("MathHotSpot", "standard");
    spec.budget_secs = Some(0.05);

    let server = Server::start(ServerConfig::default()).expect("server starts");
    let addr = server.addr().to_string();
    let id = submit(&addr, &spec).expect("submit");
    let result = wait_done(&addr, id).expect("job finishes");

    assert_eq!(
        result.get("outcome").and_then(Json::as_str),
        Some("timeout"),
        "a budget overrun must be a timeout, not no_solution: {}",
        result.to_compact_string()
    );
    assert_eq!(result.get("result_ok").and_then(Json::as_bool), Some(false));
    let document = result.get("document").expect("document");
    assert_eq!(
        document.get("outcome").and_then(Json::as_str),
        Some("timeout")
    );
    assert_ne!(
        document.get("forensics"),
        Some(&Json::Null),
        "failed jobs return forensics"
    );

    let lines = watch_lines(&addr, id);
    assert_valid_stream(&lines, "timeout");

    server.shutdown(ShutdownMode::Drain);
    server.wait();
}

#[test]
fn cancel_stops_a_running_job_as_cancelled() {
    let spec = benchmark_spec("MathHotSpot", "widened");

    let server = Server::start(ServerConfig::default()).expect("server starts");
    let addr = server.addr().to_string();
    let id = submit(&addr, &spec).expect("submit");
    wait_for_running(&addr, id);

    request(
        &addr,
        &Json::object()
            .with("cmd", Json::str("cancel"))
            .with("id", Json::from(id as usize)),
    )
    .expect("cancel accepted");
    let result = wait_done(&addr, id).expect("job retires");
    assert_eq!(
        result.get("outcome").and_then(Json::as_str),
        Some("cancelled"),
        "{}",
        result.to_compact_string()
    );
    let lines = watch_lines(&addr, id);
    assert_valid_stream(&lines, "cancelled");

    server.shutdown(ShutdownMode::Drain);
    server.wait();
}

#[test]
fn cancelling_shutdown_retires_running_and_queued_jobs() {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
    })
    .expect("server starts");
    let addr = server.addr().to_string();

    // One long job hogs the single worker; the second stays queued.
    let running = submit(&addr, &benchmark_spec("MathHotSpot", "widened")).expect("submit");
    let queued = submit(&addr, &rename_spec()).expect("submit");
    wait_for_running(&addr, running);
    assert_eq!(status_of(&addr, queued), "queued");

    // Subscribe before requesting shutdown: once the last job retires the
    // server stops and the listener goes away.
    let watchers: Vec<_> = [running, queued]
        .into_iter()
        .map(|id| {
            let addr = addr.clone();
            std::thread::spawn(move || watch_lines(&addr, id))
        })
        .collect();

    let reply = request(
        &addr,
        &Json::object()
            .with("cmd", Json::str("shutdown"))
            .with("mode", Json::str("cancel")),
    )
    .expect("shutdown accepted");
    assert_eq!(reply.get("mode").and_then(Json::as_str), Some("cancel"));

    // Streams still terminate deterministically: the running job stops at
    // its next cancellation point, the queued one never starts.
    let mut streams = watchers
        .into_iter()
        .map(|w| w.join().expect("watcher joins"));
    let running_lines = streams.next().expect("running stream");
    assert_valid_stream(&running_lines, "cancelled");
    let queued_lines = streams.next().expect("queued stream");
    assert_valid_stream(&queued_lines, "cancelled");
    assert_eq!(queued_lines.len(), 1, "a never-started job is just sealed");

    server.wait();
}

#[test]
fn draining_shutdown_finishes_queued_work_and_rejects_new_jobs() {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
    })
    .expect("server starts");
    let addr = server.addr().to_string();

    // The known-red benchmark keeps the single worker busy for a few
    // seconds, so the server is still up for the post-shutdown checks
    // while the rename job waits behind it in the queue.
    let first = submit(&addr, &benchmark_spec("MathHotSpot", "standard")).expect("submit");
    let second = submit(&addr, &move_spec()).expect("submit");
    let watchers: Vec<_> = [first, second]
        .into_iter()
        .map(|id| {
            let addr = addr.clone();
            std::thread::spawn(move || watch_lines(&addr, id))
        })
        .collect();

    let reply = request(&addr, &Json::object().with("cmd", Json::str("shutdown")))
        .expect("shutdown accepted");
    assert_eq!(reply.get("mode").and_then(Json::as_str), Some("drain"));

    let rejected = submit(&addr, &rename_spec());
    assert!(
        rejected
            .expect_err("submissions after shutdown must be rejected")
            .contains("shutting down"),
        "rejection should explain the shutdown"
    );

    // Drain mode still finishes both queued jobs before stopping.
    let mut streams = watchers
        .into_iter()
        .map(|w| w.join().expect("watcher joins"));
    assert_valid_stream(&streams.next().expect("first stream"), "no_solution");
    assert_valid_stream(&streams.next().expect("second stream"), "solved");

    server.wait();
}

#[test]
fn protocol_rejects_malformed_requests() {
    let server = Server::start(ServerConfig::default()).expect("server starts");
    let addr = server.addr().to_string();

    let bad_cmd = request(&addr, &Json::object().with("cmd", Json::str("frobnicate")));
    assert!(bad_cmd.unwrap_err().contains("unknown command"));

    let no_cmd = request(&addr, &Json::object().with("id", Json::from(1usize)));
    assert!(no_cmd.unwrap_err().contains("cmd"));

    let bad_job = request(
        &addr,
        &Json::object()
            .with("cmd", Json::str("submit"))
            .with("job", Json::object()),
    );
    assert!(bad_job.unwrap_err().contains("source_ddl"));

    let missing = request(
        &addr,
        &Json::object()
            .with("cmd", Json::str("status"))
            .with("id", Json::from(99usize)),
    );
    assert!(missing.unwrap_err().contains("no such job"));

    let unfinished_result = {
        let id = submit(&addr, &benchmark_spec("MathHotSpot", "widened")).expect("submit");
        let reply = request(
            &addr,
            &Json::object()
                .with("cmd", Json::str("result"))
                .with("id", Json::from(id as usize)),
        );
        request(
            &addr,
            &Json::object()
                .with("cmd", Json::str("cancel"))
                .with("id", Json::from(id as usize)),
        )
        .expect("cancel");
        reply
    };
    assert!(unfinished_result.unwrap_err().contains("not finished"));

    server.shutdown(ShutdownMode::Cancel);
    server.wait();
}
