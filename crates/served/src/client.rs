//! The line-JSON protocol client: library helpers plus the
//! `migrate client` CLI.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use pipeline::{JobSpec, Json};

/// How often [`wait_done`] polls the server.
const WAIT_POLL: Duration = Duration::from_millis(50);

/// Usage string for `migrate client`.
pub const CLIENT_USAGE: &str = "\
usage: migrate client <addr> <command> [options]

commands:
  submit --source-ddl <f> --target-ddl <f> --program <f>
         [--dialect <name>] [--config standard|widened|enumerative]
         [--max-vcs <n>] [--budget-secs <secs>] [--no-validate]
         [--backend memory|sqlite3] [--rows <n>]
         [--watch <out.ndjson>] [--wait]
                     submit a job; prints `{\"id\": N}`. With --watch the
                     job's NDJSON stream is written to the file (implies
                     waiting for the job); with --wait the final result
                     document is printed and the exit code reflects the
                     outcome (0 solved+validated, 1 otherwise).
  status <id>        print the job's status line
  list               print one status line per job
  result <id>        print the finished job's result document
                     (exit 0 solved+validated, 1 otherwise)
  watch <id> [--out <file>]
                     stream the job's NDJSON events to stdout or <file>
  cancel <id>        request cancellation of a job
  shutdown [--mode drain|cancel]
                     stop the server (drain: finish queued work first)

<addr> is the `host:port` printed by `migrate serve` on startup.";

/// Sends one request and reads the one-line reply.
///
/// # Errors
///
/// A human-readable message on connection failure, protocol violation or
/// an `ok: false` reply (whose `error` text is propagated).
pub fn request(addr: &str, request: &Json) -> Result<Json, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    writeln!(stream, "{}", request.to_compact_string())
        .map_err(|e| format!("cannot send request: {e}"))?;
    stream
        .flush()
        .map_err(|e| format!("cannot send request: {e}"))?;
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .map_err(|e| format!("cannot read reply: {e}"))?;
    if line.trim().is_empty() {
        return Err("server closed the connection without a reply".to_string());
    }
    let reply = Json::parse(line.trim()).map_err(|e| format!("bad reply: {e}"))?;
    match reply.get("ok").and_then(Json::as_bool) {
        Some(true) => Ok(reply),
        Some(false) => Err(reply
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("request failed")
            .to_string()),
        None => Err(format!("malformed reply: {}", reply.to_compact_string())),
    }
}

/// Submits a job spec; returns the assigned job id.
///
/// # Errors
///
/// See [`request`].
pub fn submit(addr: &str, spec: &JobSpec) -> Result<u64, String> {
    let reply = request(
        addr,
        &Json::object()
            .with("cmd", Json::str("submit"))
            .with("job", spec.to_json()),
    )?;
    reply
        .get("id")
        .and_then(Json::as_i128)
        .map(|id| id as u64)
        .ok_or_else(|| "submit reply carries no id".to_string())
}

/// Streams a job's NDJSON events into `sink` until the stream's terminal
/// line; returns the number of lines written.
///
/// # Errors
///
/// A message on connection or write failure, or when the server replies
/// with an error line instead of a stream.
pub fn watch_into(addr: &str, id: u64, sink: &mut dyn Write) -> Result<usize, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let watch = Json::object()
        .with("cmd", Json::str("watch"))
        .with("id", Json::from(id as usize));
    writeln!(stream, "{}", watch.to_compact_string())
        .map_err(|e| format!("cannot send request: {e}"))?;
    let reader = BufReader::new(stream);
    let mut lines = 0usize;
    for line in reader.lines() {
        let line = line.map_err(|e| format!("stream error: {e}"))?;
        if lines == 0 {
            // An error reply ({"ok":false,...}) arrives where the first
            // event line would; surface it instead of writing it out.
            if let Ok(reply) = Json::parse(&line) {
                if reply.get("ok").and_then(Json::as_bool) == Some(false) {
                    return Err(reply
                        .get("error")
                        .and_then(Json::as_str)
                        .unwrap_or("watch failed")
                        .to_string());
                }
            }
        }
        writeln!(sink, "{line}").map_err(|e| format!("cannot write stream: {e}"))?;
        lines += 1;
    }
    Ok(lines)
}

/// Polls `status` until the job is done, then fetches its `result`.
///
/// # Errors
///
/// See [`request`].
pub fn wait_done(addr: &str, id: u64) -> Result<Json, String> {
    loop {
        let status = request(
            addr,
            &Json::object()
                .with("cmd", Json::str("status"))
                .with("id", Json::from(id as usize)),
        )?;
        if status.get("status").and_then(Json::as_str) == Some("done") {
            return request(
                addr,
                &Json::object()
                    .with("cmd", Json::str("result"))
                    .with("id", Json::from(id as usize)),
            );
        }
        std::thread::sleep(WAIT_POLL);
    }
}

/// Exit code semantics shared by `submit --wait` and `result`: success
/// only for a solved job whose validation (if any) matched.
fn outcome_exit_code(result: &Json) -> i32 {
    let solved = result.get("outcome").and_then(Json::as_str) == Some("solved");
    let ok = result.get("result_ok").and_then(Json::as_bool) == Some(true);
    i32::from(!(solved && ok))
}

fn read_file(path: &PathBuf) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))
}

struct SubmitArgs {
    spec: JobSpec,
    watch: Option<PathBuf>,
    wait: bool,
}

fn parse_submit(args: &[String]) -> Result<SubmitArgs, String> {
    let mut source = None;
    let mut target = None;
    let mut program = None;
    let mut dialect = None;
    let mut config = None;
    let mut max_vcs = None;
    let mut budget = None;
    let mut validate = true;
    let mut backend = None;
    let mut rows = None;
    let mut watch = None;
    let mut wait = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut take = |what: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("missing value for `{what}`"))
        };
        match arg.as_str() {
            "--source-ddl" => source = Some(PathBuf::from(take("--source-ddl")?)),
            "--target-ddl" => target = Some(PathBuf::from(take("--target-ddl")?)),
            "--program" => program = Some(PathBuf::from(take("--program")?)),
            "--dialect" => dialect = Some(take("--dialect")?),
            "--config" => config = Some(take("--config")?),
            "--max-vcs" => {
                let value = take("--max-vcs")?;
                max_vcs = Some(value.parse::<usize>().ok().filter(|n| *n >= 1).ok_or_else(
                    || format!("`--max-vcs` expects a number >= 1, found `{value}`"),
                )?);
            }
            "--budget-secs" => {
                let value = take("--budget-secs")?;
                budget = Some(
                    value
                        .parse::<f64>()
                        .ok()
                        .filter(|b| b.is_finite() && *b > 0.0)
                        .ok_or_else(|| {
                            format!("`--budget-secs` expects a positive number, found `{value}`")
                        })?,
                );
            }
            "--no-validate" => validate = false,
            "--backend" => backend = Some(take("--backend")?),
            "--rows" => {
                let value = take("--rows")?;
                rows = Some(
                    value
                        .parse::<usize>()
                        .ok()
                        .filter(|n| *n >= 1)
                        .ok_or_else(|| {
                            format!("`--rows` expects a number >= 1, found `{value}`")
                        })?,
                );
            }
            "--watch" => watch = Some(PathBuf::from(take("--watch")?)),
            "--wait" => wait = true,
            other => return Err(format!("unknown submit argument `{other}`")),
        }
    }
    let source = source.ok_or("`--source-ddl` is required")?;
    let target = target.ok_or("`--target-ddl` is required")?;
    let program = program.ok_or("`--program` is required")?;
    let mut spec = JobSpec::new(
        read_file(&source)?,
        read_file(&target)?,
        read_file(&program)?,
    );
    if let Some(dialect) = dialect {
        spec.dialect = dialect;
    }
    if let Some(config) = config {
        spec.config = config;
    }
    spec.max_value_correspondences = max_vcs;
    spec.budget_secs = budget;
    spec.validate = validate;
    if let Some(backend) = backend {
        spec.backend = backend;
    }
    if let Some(rows) = rows {
        spec.rows = rows;
    }
    Ok(SubmitArgs { spec, watch, wait })
}

fn parse_id(value: Option<&String>) -> Result<u64, String> {
    value
        .ok_or("missing job id")?
        .parse::<u64>()
        .map_err(|_| "job id must be a positive integer".to_string())
}

fn render_status(entry: &Json) -> String {
    let id = entry.get("id").and_then(Json::as_i128).unwrap_or(0);
    let status = entry.get("status").and_then(Json::as_str).unwrap_or("?");
    match entry.get("outcome").and_then(Json::as_str) {
        Some(outcome) => format!("job {id}: {status} ({outcome})"),
        None => format!("job {id}: {status}"),
    }
}

/// The `migrate client` entry point. Returns the process exit code
/// (0 success, 1 failure, 2 usage).
pub fn client_cli(args: &[String]) -> i32 {
    match client_cli_inner(args) {
        Ok(code) => code,
        Err((code, message)) => {
            eprintln!("{message}");
            code
        }
    }
}

fn client_cli_inner(args: &[String]) -> Result<i32, (i32, String)> {
    if args.first().map(String::as_str) == Some("--help")
        || args.first().map(String::as_str) == Some("-h")
    {
        return Err((2, CLIENT_USAGE.to_string()));
    }
    let addr = args
        .first()
        .ok_or((2, format!("missing server address\n\n{CLIENT_USAGE}")))?
        .clone();
    let command = args
        .get(1)
        .ok_or((2, format!("missing command\n\n{CLIENT_USAGE}")))?
        .as_str();
    let rest = &args[2..];
    let usage = |message: String| (2, format!("{message}\n\n{CLIENT_USAGE}"));
    let failure = |message: String| (1, message);
    match command {
        "submit" => {
            let submit_args = parse_submit(rest).map_err(usage)?;
            let id = submit(&addr, &submit_args.spec).map_err(failure)?;
            println!(
                "{}",
                Json::object()
                    .with("id", Json::from(id as usize))
                    .to_compact_string()
            );
            if let Some(path) = &submit_args.watch {
                let mut file = std::fs::File::create(path)
                    .map_err(|e| failure(format!("cannot create {}: {e}", path.display())))?;
                watch_into(&addr, id, &mut file).map_err(failure)?;
            }
            if submit_args.wait || submit_args.watch.is_some() {
                let result = wait_done(&addr, id).map_err(failure)?;
                println!(
                    "{}",
                    result
                        .get("document")
                        .cloned()
                        .unwrap_or(Json::Null)
                        .to_pretty_string()
                );
                return Ok(outcome_exit_code(&result));
            }
            Ok(0)
        }
        "status" => {
            let id = parse_id(rest.first()).map_err(usage)?;
            let reply = request(
                &addr,
                &Json::object()
                    .with("cmd", Json::str("status"))
                    .with("id", Json::from(id as usize)),
            )
            .map_err(failure)?;
            println!("{}", render_status(&reply));
            Ok(0)
        }
        "list" => {
            let reply =
                request(&addr, &Json::object().with("cmd", Json::str("list"))).map_err(failure)?;
            for entry in reply.get("jobs").and_then(Json::as_array).unwrap_or(&[]) {
                println!("{}", render_status(entry));
            }
            Ok(0)
        }
        "result" => {
            let id = parse_id(rest.first()).map_err(usage)?;
            let reply = request(
                &addr,
                &Json::object()
                    .with("cmd", Json::str("result"))
                    .with("id", Json::from(id as usize)),
            )
            .map_err(failure)?;
            println!(
                "{}",
                reply
                    .get("document")
                    .cloned()
                    .unwrap_or(Json::Null)
                    .to_pretty_string()
            );
            Ok(outcome_exit_code(&reply))
        }
        "watch" => {
            let id = parse_id(rest.first()).map_err(usage)?;
            let mut out: Option<PathBuf> = None;
            let mut iter = rest[1..].iter();
            while let Some(arg) = iter.next() {
                match arg.as_str() {
                    "--out" => {
                        out =
                            Some(PathBuf::from(iter.next().cloned().ok_or_else(|| {
                                usage("missing value for `--out`".to_string())
                            })?));
                    }
                    other => return Err(usage(format!("unknown watch argument `{other}`"))),
                }
            }
            match out {
                Some(path) => {
                    let mut file = std::fs::File::create(&path)
                        .map_err(|e| failure(format!("cannot create {}: {e}", path.display())))?;
                    watch_into(&addr, id, &mut file).map_err(failure)?;
                }
                None => {
                    let stdout = std::io::stdout();
                    let mut lock = stdout.lock();
                    watch_into(&addr, id, &mut lock).map_err(failure)?;
                }
            }
            Ok(0)
        }
        "cancel" => {
            let id = parse_id(rest.first()).map_err(usage)?;
            request(
                &addr,
                &Json::object()
                    .with("cmd", Json::str("cancel"))
                    .with("id", Json::from(id as usize)),
            )
            .map_err(failure)?;
            println!("cancellation requested for job {id}");
            Ok(0)
        }
        "shutdown" => {
            let mut mode = "drain".to_string();
            let mut iter = rest.iter();
            while let Some(arg) = iter.next() {
                match arg.as_str() {
                    "--mode" => {
                        mode = iter
                            .next()
                            .cloned()
                            .ok_or_else(|| usage("missing value for `--mode`".to_string()))?;
                    }
                    other => return Err(usage(format!("unknown shutdown argument `{other}`"))),
                }
            }
            request(
                &addr,
                &Json::object()
                    .with("cmd", Json::str("shutdown"))
                    .with("mode", Json::str(&mode)),
            )
            .map_err(failure)?;
            println!("shutdown requested ({mode})");
            Ok(0)
        }
        other => Err(usage(format!("unknown command `{other}`"))),
    }
}
