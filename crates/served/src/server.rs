//! The job server: TCP listener, job table, scheduler and worker pool.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use migrator::{CancelToken, SynthesisEvent, SynthesisObserver};
use parpool::BudgetReservation;
use pipeline::{run_job, JobSpec, Json, LineBus, LineBusSink, NdjsonWriter};

/// How the accept loop polls for connections and shutdown.
const POLL: Duration = Duration::from_millis(10);

/// How long a connection may stay silent before its request read is
/// abandoned (a stuck client must not pin a handler thread forever).
const REQUEST_READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Usage string for `migrate serve`.
pub const SERVE_USAGE: &str = "\
usage: migrate serve [--addr <host:port>] [--workers <n>] [--threads <n>]

Starts the migration job server on <host:port> (default 127.0.0.1:0, an
ephemeral port printed on startup as `serving on <addr>`). Jobs are
accepted over a line-oriented JSON protocol (see `migrate client --help`),
run on a pool of at most --workers concurrent jobs (default 2) scheduled
against the global --threads budget, and streamed to `watch` subscribers
as NDJSON. The server runs until a client sends `shutdown`; `drain` mode
finishes queued work first, `cancel` mode stops every job at its next
cancellation point.";

/// What to do with unfinished jobs when the server shuts down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShutdownMode {
    /// Stop accepting submissions, finish everything already queued.
    Drain,
    /// Cancel queued and running jobs at their next cancellation point.
    Cancel,
}

/// Lifecycle phases of the server, stored in [`ServerState::phase`].
const PHASE_ACCEPTING: u8 = 0;
const PHASE_DRAINING: u8 = 1;
const PHASE_CANCELLING: u8 = 2;
const PHASE_STOPPED: u8 = 3;

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; `host:0` picks an ephemeral port.
    pub addr: String,
    /// Maximum number of concurrently *running* jobs.
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
        }
    }
}

/// Status of one job in the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobStatus {
    Queued,
    Running,
    Done,
}

impl JobStatus {
    fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
        }
    }
}

/// One submitted job: its spec, lifecycle state and event stream.
struct JobRecord {
    id: u64,
    spec: JobSpec,
    status: JobStatus,
    /// Final outcome kind once done (`solved`, `no_solution`, `timeout`,
    /// `cancelled`, `error`).
    outcome: Option<String>,
    /// Whether the job solved *and* validated.
    ok: bool,
    /// The job's single result document once done.
    document: Option<Json>,
    /// Fan-out of the job's NDJSON stream to watchers.
    bus: Arc<LineBus>,
    /// The writer producing that stream (kept to seal it exactly once).
    writer: Arc<NdjsonWriter>,
    cancel: CancelToken,
}

struct ServerState {
    jobs: Mutex<Vec<JobRecord>>,
    /// Wakes the scheduler on submit, job completion and shutdown.
    wake: Condvar,
    phase: AtomicU8,
    running: AtomicUsize,
    workers: usize,
}

impl ServerState {
    fn phase(&self) -> u8 {
        self.phase.load(Ordering::SeqCst)
    }

    /// Moves the server into a shutdown phase. A cancelling shutdown wins
    /// over a draining one; nothing un-stops a stopped server.
    fn request_shutdown(&self, mode: ShutdownMode) {
        let target = match mode {
            ShutdownMode::Drain => PHASE_DRAINING,
            ShutdownMode::Cancel => PHASE_CANCELLING,
        };
        let _ = self.phase.fetch_max(target, Ordering::SeqCst);
        // Hold the job lock so a scheduler mid-decision re-reads the phase.
        let _jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
        self.wake.notify_all();
    }
}

/// Forwards only the deterministic main channel to the job's stream.
///
/// Speculation-channel notices are scheduling-dependent; letting them into
/// a watched stream would perturb `seq` numbers and break the
/// byte-identical-to-serial contract the server advertises.
struct MainChannelOnly(Arc<NdjsonWriter>);

impl SynthesisObserver for MainChannelOnly {
    fn event(&self, event: &SynthesisEvent) {
        self.0.event(event);
    }

    fn speculation(&self, _event: &SynthesisEvent) {}
}

/// A running migration job server.
///
/// [`Server::start`] binds and spawns the accept loop and the scheduler;
/// [`Server::wait`] blocks until a `shutdown` request (or
/// [`Server::shutdown`]) has fully taken effect — every job finished or
/// cancelled, every stream sealed, every connection handler joined.
pub struct Server {
    state: Arc<ServerState>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    scheduler: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("phase", &self.state.phase())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds `config.addr` and starts serving in background threads.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            jobs: Mutex::new(Vec::new()),
            wake: Condvar::new(),
            phase: AtomicU8::new(PHASE_ACCEPTING),
            running: AtomicUsize::new(0),
            workers: config.workers.max(1),
        });
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_state = Arc::clone(&state);
        let accept_handlers = Arc::clone(&handlers);
        let accept = std::thread::spawn(move || {
            accept_loop(&listener, &accept_state, &accept_handlers);
        });
        let scheduler_state = Arc::clone(&state);
        let scheduler = std::thread::spawn(move || scheduler_loop(&scheduler_state));

        Ok(Server {
            state,
            addr,
            accept: Some(accept),
            scheduler: Some(scheduler),
            handlers,
        })
    }

    /// The address the server actually bound (resolves `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a shutdown programmatically, exactly like a client's
    /// `shutdown` request.
    pub fn shutdown(&self, mode: ShutdownMode) {
        self.state.request_shutdown(mode);
    }

    /// Blocks until the server has fully shut down.
    pub fn wait(mut self) {
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // Handlers outlive the accept loop only briefly: every stream they
        // might be following is sealed by now.
        let handlers =
            std::mem::take(&mut *self.handlers.lock().unwrap_or_else(|e| e.into_inner()));
        for handle in handlers {
            let _ = handle.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    state: &Arc<ServerState>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        if state.phase() == PHASE_STOPPED {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let state = Arc::clone(state);
                let handle = std::thread::spawn(move || handle_connection(stream, &state));
                handlers
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(handle);
            }
            Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// The scheduler: starts queued jobs while worker slots and thread-budget
/// tokens are available; on shutdown, drains or cancels deterministically
/// and finally flips the server to stopped.
fn scheduler_loop(state: &Arc<ServerState>) {
    loop {
        let mut jobs = state.jobs.lock().unwrap_or_else(|e| e.into_inner());
        let phase = state.phase();

        if phase == PHASE_CANCELLING {
            // Deterministic teardown: queued jobs are retired in id order
            // without ever running (their streams still get a terminal
            // line); running jobs get their tokens fired and are awaited.
            for job in jobs.iter_mut() {
                if job.status == JobStatus::Queued {
                    job.status = JobStatus::Done;
                    job.outcome = Some("cancelled".to_string());
                    job.ok = false;
                    job.document =
                        Some(Json::object().with("outcome", Json::str("cancelled")).with(
                            "error",
                            Json::str("job cancelled before it started (server shutdown)"),
                        ));
                    job.writer.finish("cancelled");
                    job.bus.close();
                }
                job.cancel.cancel();
            }
        }

        let queued = jobs.iter().any(|j| j.status == JobStatus::Queued);
        let running = state.running.load(Ordering::SeqCst);
        if phase != PHASE_ACCEPTING && !queued && running == 0 {
            state.phase.store(PHASE_STOPPED, Ordering::SeqCst);
            return;
        }

        if phase != PHASE_CANCELLING && queued && running < state.workers {
            // One thread-budget token per running job: the runner thread is
            // a computing thread, so nested fan-outs inside N concurrent
            // jobs borrow from a pool shrunk by N and the box never runs
            // more than the configured thread limit hot. At a limit of 1
            // no token can ever be reserved (the caller's implicit slot is
            // the whole budget), so jobs run unreserved, each sequential
            // inside itself and bounded only by --workers.
            let tokens = usize::from(parpool::thread_limit() > 1);
            if let Some(reservation) = BudgetReservation::try_new(tokens) {
                let job = jobs
                    .iter_mut()
                    .filter(|j| j.status == JobStatus::Queued)
                    .min_by_key(|j| j.id)
                    .expect("a queued job exists");
                job.status = JobStatus::Running;
                state.running.fetch_add(1, Ordering::SeqCst);
                let id = job.id;
                let spec = job.spec.clone();
                let cancel = job.cancel.clone();
                let writer = Arc::clone(&job.writer);
                let bus = Arc::clone(&job.bus);
                drop(jobs);
                let runner_state = Arc::clone(state);
                std::thread::spawn(move || {
                    run_one(&runner_state, id, &spec, cancel, &writer, &bus, reservation);
                });
                continue;
            }
        }

        // Nothing startable right now: sleep until a submit/finish/shutdown
        // pokes the condvar (with a timeout, since thread-budget tokens are
        // released without notification).
        let (guard, _timeout) = state
            .wake
            .wait_timeout(jobs, POLL)
            .unwrap_or_else(|e| e.into_inner());
        drop(guard);
    }
}

/// Runs one job on the current (runner) thread and retires it.
fn run_one(
    state: &Arc<ServerState>,
    id: u64,
    spec: &JobSpec,
    cancel: CancelToken,
    writer: &Arc<NdjsonWriter>,
    bus: &Arc<LineBus>,
    reservation: BudgetReservation,
) {
    let report = run_job(
        spec,
        cancel,
        Some(Arc::new(MainChannelOnly(Arc::clone(writer)))),
        Some(Arc::clone(writer) as Arc<dyn pipeline::PipelineObserver>),
    );
    writer.finish(&report.outcome);
    bus.close();
    drop(reservation);

    let mut jobs = state.jobs.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(job) = jobs.iter_mut().find(|j| j.id == id) {
        job.status = JobStatus::Done;
        job.outcome = Some(report.outcome);
        job.ok = report.ok;
        job.document = Some(report.document);
    }
    state.running.fetch_sub(1, Ordering::SeqCst);
    state.wake.notify_all();
}

fn reply(stream: &mut TcpStream, json: &Json) {
    let _ = writeln!(stream, "{}", json.to_compact_string());
    let _ = stream.flush();
}

fn error_reply(message: impl Into<String>) -> Json {
    Json::object()
        .with("ok", Json::Bool(false))
        .with("error", Json::str(message.into()))
}

fn handle_connection(mut stream: TcpStream, state: &Arc<ServerState>) {
    let _ = stream.set_read_timeout(Some(REQUEST_READ_TIMEOUT));
    let mut line = String::new();
    {
        let mut reader = BufReader::new(match stream.try_clone() {
            Ok(reader) => reader,
            Err(_) => return,
        });
        if reader.read_line(&mut line).is_err() {
            return;
        }
    }
    let line = line.trim();
    if line.is_empty() {
        return;
    }
    let request = match Json::parse(line) {
        Ok(request) => request,
        Err(error) => {
            reply(&mut stream, &error_reply(format!("bad request: {error}")));
            return;
        }
    };
    let Some(cmd) = request.get("cmd").and_then(Json::as_str) else {
        reply(&mut stream, &error_reply("missing string field `cmd`"));
        return;
    };
    let id_of = |request: &Json| -> Result<u64, Json> {
        request
            .get("id")
            .and_then(Json::as_i128)
            .filter(|id| *id >= 1)
            .map(|id| id as u64)
            .ok_or_else(|| error_reply("missing or invalid `id`"))
    };
    match cmd {
        "submit" => {
            let response = handle_submit(state, &request);
            reply(&mut stream, &response);
        }
        "status" => match id_of(&request) {
            Ok(id) => {
                let jobs = state.jobs.lock().unwrap_or_else(|e| e.into_inner());
                let response = match jobs.iter().find(|j| j.id == id) {
                    Some(job) => job_status_json(job).with("ok", Json::Bool(true)),
                    None => error_reply(format!("no such job: {id}")),
                };
                drop(jobs);
                reply(&mut stream, &response);
            }
            Err(response) => reply(&mut stream, &response),
        },
        "list" => {
            let jobs = state.jobs.lock().unwrap_or_else(|e| e.into_inner());
            let entries: Vec<Json> = jobs.iter().map(job_status_json).collect();
            drop(jobs);
            reply(
                &mut stream,
                &Json::object()
                    .with("ok", Json::Bool(true))
                    .with("jobs", Json::Array(entries)),
            );
        }
        "result" => match id_of(&request) {
            Ok(id) => {
                let jobs = state.jobs.lock().unwrap_or_else(|e| e.into_inner());
                let response = match jobs.iter().find(|j| j.id == id) {
                    Some(job) if job.status == JobStatus::Done => Json::object()
                        .with("ok", Json::Bool(true))
                        .with("id", Json::from(id as usize))
                        .with(
                            "outcome",
                            Json::str(job.outcome.as_deref().unwrap_or("unknown")),
                        )
                        .with("result_ok", Json::Bool(job.ok))
                        .with("document", job.document.clone().unwrap_or(Json::Null)),
                    Some(job) => error_reply(format!(
                        "job {id} is not finished (status: {})",
                        job.status.as_str()
                    )),
                    None => error_reply(format!("no such job: {id}")),
                };
                drop(jobs);
                reply(&mut stream, &response);
            }
            Err(response) => reply(&mut stream, &response),
        },
        "cancel" => match id_of(&request) {
            Ok(id) => {
                let jobs = state.jobs.lock().unwrap_or_else(|e| e.into_inner());
                let response = match jobs.iter().find(|j| j.id == id) {
                    Some(job) => {
                        job.cancel.cancel();
                        Json::object()
                            .with("ok", Json::Bool(true))
                            .with("id", Json::from(id as usize))
                    }
                    None => error_reply(format!("no such job: {id}")),
                };
                drop(jobs);
                state.wake.notify_all();
                reply(&mut stream, &response);
            }
            Err(response) => reply(&mut stream, &response),
        },
        "watch" => match id_of(&request) {
            Ok(id) => {
                let follower = {
                    let jobs = state.jobs.lock().unwrap_or_else(|e| e.into_inner());
                    jobs.iter().find(|j| j.id == id).map(|j| j.bus.follow())
                };
                match follower {
                    Some(mut follower) => {
                        // Stream every line of the job's history and then
                        // whatever still arrives, until the bus closes
                        // (which happens exactly once, after the terminal
                        // `run_finished` line).
                        loop {
                            match follower.next_line_timeout(Duration::from_millis(100)) {
                                Ok(Some(line)) => {
                                    if writeln!(stream, "{line}").is_err() {
                                        return;
                                    }
                                    let _ = stream.flush();
                                }
                                Ok(None) => return,
                                // Timed out: no new line yet. Every stream
                                // terminates (jobs finish, time out, or are
                                // cancelled at shutdown), so keep waiting;
                                // a disconnected client is detected at the
                                // next line write.
                                Err(()) => {}
                            }
                        }
                    }
                    None => reply(&mut stream, &error_reply(format!("no such job: {id}"))),
                }
            }
            Err(response) => reply(&mut stream, &response),
        },
        "shutdown" => {
            let mode = match request.get("mode").and_then(Json::as_str) {
                None | Some("drain") => Some(ShutdownMode::Drain),
                Some("cancel") => Some(ShutdownMode::Cancel),
                Some(other) => {
                    reply(
                        &mut stream,
                        &error_reply(format!(
                            "unknown shutdown mode `{other}` (expected `drain` or `cancel`)"
                        )),
                    );
                    None
                }
            };
            if let Some(mode) = mode {
                reply(
                    &mut stream,
                    &Json::object().with("ok", Json::Bool(true)).with(
                        "mode",
                        Json::str(match mode {
                            ShutdownMode::Drain => "drain",
                            ShutdownMode::Cancel => "cancel",
                        }),
                    ),
                );
                state.request_shutdown(mode);
            }
        }
        other => reply(
            &mut stream,
            &error_reply(format!("unknown command `{other}`")),
        ),
    }
}

fn handle_submit(state: &Arc<ServerState>, request: &Json) -> Json {
    if state.phase() != PHASE_ACCEPTING {
        return error_reply("server is shutting down; submissions are closed");
    }
    let Some(job) = request.get("job") else {
        return error_reply("missing object field `job`");
    };
    let spec = match JobSpec::from_json(job) {
        Ok(spec) => spec,
        Err(message) => return error_reply(format!("invalid job: {message}")),
    };
    let bus = Arc::new(LineBus::new());
    let writer = Arc::new(NdjsonWriter::new(Box::new(LineBusSink(Arc::clone(&bus)))));
    let mut jobs = state.jobs.lock().unwrap_or_else(|e| e.into_inner());
    // Re-check under the lock: a shutdown raced in between the phase check
    // and the insert would otherwise queue a job nobody retires.
    if state.phase() != PHASE_ACCEPTING {
        return error_reply("server is shutting down; submissions are closed");
    }
    let id = jobs.iter().map(|j| j.id).max().unwrap_or(0) + 1;
    jobs.push(JobRecord {
        id,
        spec,
        status: JobStatus::Queued,
        outcome: None,
        ok: false,
        document: None,
        bus,
        writer,
        cancel: CancelToken::new(),
    });
    drop(jobs);
    state.wake.notify_all();
    Json::object()
        .with("ok", Json::Bool(true))
        .with("id", Json::from(id as usize))
        .with("status", Json::str("queued"))
}

fn job_status_json(job: &JobRecord) -> Json {
    Json::object()
        .with("id", Json::from(job.id as usize))
        .with("status", Json::str(job.status.as_str()))
        .with(
            "outcome",
            match &job.outcome {
                Some(outcome) => Json::str(outcome),
                None => Json::Null,
            },
        )
        .with(
            "result_ok",
            if job.status == JobStatus::Done {
                Json::Bool(job.ok)
            } else {
                Json::Null
            },
        )
}

/// The `migrate serve` entry point. Parses `args`, starts the server,
/// prints `serving on <addr>` and blocks until shutdown. Returns the
/// process exit code.
pub fn serve_cli(args: &[String]) -> i32 {
    let mut config = ServerConfig::default();
    let mut threads = 0usize;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut take = |what: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("missing value for `{what}`"))
        };
        let result: Result<(), String> = (|| {
            match arg.as_str() {
                "--addr" => config.addr = take("--addr")?,
                "--workers" => {
                    let value = take("--workers")?;
                    config.workers = value.parse().ok().filter(|n| *n >= 1).ok_or_else(|| {
                        format!("`--workers` expects a number >= 1, found `{value}`")
                    })?;
                }
                "--threads" => {
                    let value = take("--threads")?;
                    threads = value.parse().ok().filter(|n| *n >= 1).ok_or_else(|| {
                        format!("`--threads` expects a number >= 1, found `{value}`")
                    })?;
                }
                "--help" | "-h" => return Err(SERVE_USAGE.to_string()),
                other => return Err(format!("unknown argument `{other}`\n\n{SERVE_USAGE}")),
            }
            Ok(())
        })();
        if let Err(message) = result {
            eprintln!("{message}");
            return 2;
        }
    }
    if threads > 0 {
        pipeline::set_thread_limit(threads);
    }
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("cannot start server: {error}");
            return 1;
        }
    };
    // The one line a supervisor scrapes for the (possibly ephemeral) port.
    println!("serving on {}", server.addr());
    let _ = std::io::stdout().flush();
    server.wait();
    println!("server stopped");
    0
}
