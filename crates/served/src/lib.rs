//! `migrated`: a migration-as-a-service job server over the pipeline
//! facade.
//!
//! The synthesizer in `migrator` is a batch tool; this crate turns it into
//! a long-running service. A [`Server`] accepts refactoring jobs over a
//! line-oriented JSON protocol on plain TCP (no dependencies beyond `std`),
//! queues them, runs them on a bounded worker pool scheduled against
//! `parpool`'s single global thread budget — so N tenants cannot
//! oversubscribe one box — and streams each job's observer events to any
//! number of `watch` subscribers as `pipeline::wire` NDJSON.
//!
//! # Protocol
//!
//! One JSON object per line, one request per connection. The server
//! answers every request with a single JSON line whose `ok` field says
//! whether it succeeded — except `watch`, which streams the job's NDJSON
//! event lines (strictly increasing `seq`, terminal `run_finished`) and
//! then closes the connection.
//!
//! | request | reply |
//! |---|---|
//! | `{"cmd":"submit","job":{…}}` | `{"ok":true,"id":N,"status":"queued"}` |
//! | `{"cmd":"status","id":N}` | `{"ok":true,"id":N,"status":…,"outcome":…}` |
//! | `{"cmd":"list"}` | `{"ok":true,"jobs":[…]}` |
//! | `{"cmd":"result","id":N}` | `{"ok":true,…,"document":{…}}` |
//! | `{"cmd":"watch","id":N}` | NDJSON stream, then close |
//! | `{"cmd":"cancel","id":N}` | `{"ok":true,"id":N}` |
//! | `{"cmd":"shutdown","mode":"drain"\|"cancel"}` | `{"ok":true,…}` |
//!
//! The `job` object of `submit` is a [`pipeline::JobSpec`] in its JSON
//! encoding: `source_ddl`, `target_ddl` and `program` texts plus optional
//! `dialect`, `config`, `budget_secs`, `backend`, `rows`, `validate` and
//! `max_value_correspondences`.
//!
//! # Determinism
//!
//! A watched stream carries only the *main* observer channel (the
//! speculation side channel is scheduling-dependent and would perturb
//! `seq`), so the stream of a job is byte-identical to a serial
//! `migrate --events` export of the same spec, at any thread count and
//! any number of concurrent jobs. Every stream terminates: jobs cancelled
//! before they ever ran still get their `run_finished` line.
//!
//! # Budgets and cancellation
//!
//! A job's `budget_secs` becomes a deadline linked to the server's own
//! cancel token for the job ([`migrator::CancelToken::linked_with_timeout`]
//! inside the facade), so whichever fires first — the submitted budget, an
//! explicit `cancel`, or a cancelling shutdown — stops the run at its next
//! cancellation point, with the outcome kind (`timeout` vs `cancelled`)
//! preserving *why*. Failed and interrupted jobs return forensics: a
//! [`pipeline::SearchLedger`] is attached to every run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod client;
mod server;

pub use client::{client_cli, request, submit, wait_done, watch_into, CLIENT_USAGE};
pub use server::{serve_cli, Server, ServerConfig, ShutdownMode, SERVE_USAGE};
