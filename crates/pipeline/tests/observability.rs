//! Observability integration tests: the Chrome-trace export round-trips
//! through the in-tree JSON parser with every stage span present, pipeline
//! events arrive in stage order, and the deterministic metrics counters are
//! byte-identical across thread counts.

use std::sync::Arc;

use dbir::equiv::TestConfig;
use migrator::{SynthesisConfig, SynthesisOutcome};
use obs::{Metrics, PipelineEvent, PipelineEventLog, Trace};
use pipeline::{backend_by_name, dialect_by_name, Refactoring, SearchLedger};
use sqlbridge::Json;

const SOURCE_DDL: &str = "CREATE TABLE Users (uid INTEGER PRIMARY KEY, nick TEXT);";
const TARGET_DDL: &str = "CREATE TABLE Users (uid INTEGER PRIMARY KEY, handle TEXT);";
const PROGRAM: &str = r#"
    update addUser(uid: int, nick: string)
        INSERT INTO Users VALUES (uid: uid, nick: nick);
    query getUser(uid: int)
        SELECT nick FROM Users WHERE uid = uid;
"#;

fn session() -> Refactoring {
    Refactoring::from_ddl(SOURCE_DDL, TARGET_DDL)
        .unwrap()
        .program_text(PROGRAM)
        .unwrap()
}

/// Runs all three stages with every instrument installed and checks the
/// trace export: valid JSON, all four stage spans, phase spans, and spans
/// that nest properly (children end no later than their parents).
#[test]
fn chrome_trace_round_trips_with_all_stage_spans() {
    let trace = Arc::new(Trace::new());
    let events = Arc::new(PipelineEventLog::new());
    let synthesized = session()
        .trace(trace.clone())
        .pipeline_observer(events.clone())
        .synthesize()
        .expect("the rename synthesizes");
    let emitted = synthesized.emit(dialect_by_name("sqlite").unwrap());
    let mut backend = backend_by_name("memory").unwrap();
    let validated = emitted.validate(backend.as_mut(), 3).expect("validates");
    assert!(validated.ok());

    let text = trace.to_chrome_json().to_pretty_string();
    let parsed = Json::parse(&text).expect("trace JSON parses");
    let trace_events = parsed
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");

    // Complete (ph == "X") spans, as (name, tid, start, end).
    let mut spans: Vec<(String, i128, i128, i128)> = Vec::new();
    for event in trace_events {
        if event.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        let name = event
            .get("name")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        let tid = event.get("tid").and_then(Json::as_i128).unwrap();
        let ts = event.get("ts").and_then(Json::as_i128).unwrap();
        let dur = event.get("dur").and_then(Json::as_i128).unwrap();
        assert!(ts >= 0 && dur >= 0, "{name}: ts={ts} dur={dur}");
        spans.push((name, tid, ts, ts + dur));
    }
    for required in ["ingest", "synthesize", "emit", "validate"] {
        assert!(
            spans.iter().any(|(name, _, _, _)| name == required),
            "missing stage span `{required}` in {text}"
        );
    }
    // Every synthesis phase appears on the phases track.
    for phase in [
        "vc enumeration",
        "sketch generation",
        "completion",
        "bounded testing",
        "plan compile",
        "snapshot clone",
        "oracle",
        "final verification",
    ] {
        assert!(
            spans
                .iter()
                .any(|(name, tid, _, _)| name == phase && *tid == 2),
            "missing phase span `{phase}`"
        );
    }
    // Pipeline-track spans nest: sorted by start, a span must either start
    // after the previous one ended or end within it.
    let mut pipeline_spans: Vec<&(String, i128, i128, i128)> =
        spans.iter().filter(|(_, tid, _, _)| *tid == 1).collect();
    pipeline_spans.sort_by_key(|(_, _, start, end)| (*start, -*end));
    let mut stack: Vec<&(String, i128, i128, i128)> = Vec::new();
    for span in pipeline_spans {
        while let Some(top) = stack.last() {
            if span.2 >= top.3 {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(top) = stack.last() {
            assert!(
                span.3 <= top.3,
                "span `{}` [{}, {}] overlaps `{}` [{}, {}] without nesting",
                span.0,
                span.2,
                span.3,
                top.0,
                top.2,
                top.3
            );
        }
        stack.push(span);
    }

    // The tree rendering lists the stages too.
    let tree = trace.render_tree();
    for required in ["ingest", "synthesize", "emit", "validate"] {
        assert!(tree.contains(required), "{tree}");
    }

    // Pipeline events arrived in stage order.
    let events = events.events();
    assert!(matches!(
        events.first(),
        Some(PipelineEvent::DdlParsed { input, tables: 1 }) if input == "source"
    ));
    assert!(
        events
            .iter()
            .any(|e| matches!(e, PipelineEvent::Emitted { dialect, .. } if dialect == "sqlite")),
        "{events:#?}"
    );
    assert!(
        events.iter().any(|e| matches!(
            e,
            PipelineEvent::BackendStatementExecuted { phase, .. } if phase == "migration"
        )),
        "{events:#?}"
    );
    // Every planned data move is later reported executed, with matching
    // 1-based indices, and planning precedes execution.
    let planned: Vec<usize> = events
        .iter()
        .filter_map(|e| match e {
            PipelineEvent::DataMovePlanned { statement, .. } => Some(*statement),
            _ => None,
        })
        .collect();
    let moved: Vec<usize> = events
        .iter()
        .filter_map(|e| match e {
            PipelineEvent::DataMoved { statement, .. } => Some(*statement),
            _ => None,
        })
        .collect();
    assert!(!planned.is_empty(), "{events:#?}");
    assert_eq!(planned, moved, "{events:#?}");
    assert_eq!(planned, (1..=planned.len()).collect::<Vec<_>>());
    let first_planned = events
        .iter()
        .position(|e| matches!(e, PipelineEvent::DataMovePlanned { .. }))
        .unwrap();
    let first_moved = events
        .iter()
        .position(|e| matches!(e, PipelineEvent::DataMoved { .. }))
        .unwrap();
    assert!(first_planned < first_moved);
    assert!(matches!(
        events.last(),
        Some(PipelineEvent::ValidationCompared {
            ok: true,
            diffs: 0,
            ..
        })
    ));
}

/// The deterministic counter view of the metrics registry is byte-identical
/// at one and at four worker threads — the same contract the synthesis
/// event log keeps.
#[test]
fn metrics_counters_are_byte_identical_across_thread_counts() {
    let run = |threads: usize| -> String {
        parpool::set_thread_limit(threads);
        let metrics = Arc::new(Metrics::new());
        let synthesized = session()
            .metrics(metrics.clone())
            .synthesize()
            .expect("synthesizes");
        let emitted = synthesized.emit(dialect_by_name("ansi").unwrap());
        let mut backend = backend_by_name("memory").unwrap();
        emitted.validate(backend.as_mut(), 3).expect("validates");
        parpool::set_thread_limit(0);
        metrics.render_counters()
    };
    let sequential = run(1);
    let parallel = run(4);
    assert!(!sequential.is_empty());
    assert!(sequential.contains("phase.plans_compiled"), "{sequential}");
    assert!(
        sequential.contains("phase.sat_blocking_clauses"),
        "{sequential}"
    );
    assert_eq!(
        sequential, parallel,
        "deterministic counters must not depend on the thread count"
    );
}

/// MathHotSpot — the known-red real-world benchmark — under a small
/// correspondence budget so the failing search stays fast in debug builds.
/// The lean bounded-testing limits mirror the experiment harness's
/// real-world configuration.
fn mathhotspot_session() -> Refactoring {
    let benchmark = benchmarks::all_benchmarks()
        .into_iter()
        .find(|b| b.name == "MathHotSpot")
        .expect("MathHotSpot is in the suite");
    let lean = TestConfig {
        max_arg_combinations: Some(4),
        ..TestConfig::default()
    };
    let config = SynthesisConfig {
        max_value_correspondences: 4,
        testing: lean.clone(),
        verification: lean,
        ..SynthesisConfig::standard()
    };
    Refactoring::new(
        benchmark.source_schema.clone(),
        benchmark.target_schema.clone(),
    )
    .program(benchmark.source_program.clone())
    .config(config)
}

/// The search-forensics ledger is byte-identical at one and at four worker
/// threads on a *failing* run — the determinism contract `migrate explain`
/// relies on. MathHotSpot under a small correspondence budget exercises
/// every taxonomy path: sketch-generation failures, MFI-blocked cohorts and
/// the frontier budget.
#[test]
fn search_ledger_is_byte_identical_across_thread_counts_on_a_failing_run() {
    let run = |threads: usize| -> String {
        parpool::set_thread_limit(threads);
        let ledger = Arc::new(SearchLedger::new());
        let err = mathhotspot_session()
            .forensics(ledger.clone())
            .synthesize()
            .expect_err("MathHotSpot stays unsolved under the standard space");
        parpool::set_thread_limit(0);
        assert_eq!(err.outcome(), Some(SynthesisOutcome::NoSolution));
        ledger.render()
    };
    let sequential = run(1);
    let parallel = run(4);
    assert!(sequential.contains("outcome: no_solution"), "{sequential}");
    assert!(
        sequential.contains("correspondence budget reached"),
        "{sequential}"
    );
    assert!(
        sequential.contains("blocking clauses (MFIs):"),
        "{sequential}"
    );
    assert!(sequential.contains("killer queries"), "{sequential}");
    assert_eq!(
        sequential, parallel,
        "the forensics ledger must not depend on the thread count"
    );
}

/// The ledger keeps the same byte-identity contract on a *succeeding* run,
/// and records which correspondence solved after how many iterations.
#[test]
fn search_ledger_is_byte_identical_across_thread_counts_on_a_solved_run() {
    let run = |threads: usize| -> String {
        parpool::set_thread_limit(threads);
        let ledger = Arc::new(SearchLedger::new());
        let synthesized = session()
            .forensics(ledger.clone())
            .synthesize()
            .expect("the rename synthesizes");
        parpool::set_thread_limit(0);
        assert_eq!(synthesized.outcome, SynthesisOutcome::Solved);
        ledger.render()
    };
    let sequential = run(1);
    let parallel = run(4);
    assert!(sequential.contains("outcome: solved"), "{sequential}");
    assert!(sequential.contains("solved"), "{sequential}");
    assert_eq!(
        sequential, parallel,
        "the forensics ledger must not depend on the thread count"
    );
}
