//! End-to-end tests of the `Refactoring` facade: the README quick example
//! through all three stages, deadline/cancellation outcomes, and observer
//! wiring.

use std::sync::Arc;
use std::time::Duration;

use migrator::{EventLog, SynthesisEvent, SynthesisOutcome};
use pipeline::{backend_by_name, dialect_by_name, report, RefactorError, Refactoring};

const SOURCE_DDL: &str = "CREATE TABLE Users (uid INTEGER PRIMARY KEY, nick TEXT);";
const TARGET_DDL: &str = "CREATE TABLE Users (uid INTEGER PRIMARY KEY, handle TEXT);";
const PROGRAM: &str = r#"
    update addUser(uid: int, nick: string)
        INSERT INTO Users VALUES (uid: uid, nick: nick);
    query getUser(uid: int)
        SELECT nick FROM Users WHERE uid = uid;
"#;

fn session() -> Refactoring {
    Refactoring::from_ddl(SOURCE_DDL, TARGET_DDL)
        .unwrap()
        .program_text(PROGRAM)
        .unwrap()
}

/// The README quick example, through every stage of the facade.
#[test]
fn readme_example_round_trips_through_all_stages() {
    let log = Arc::new(EventLog::new());
    let synthesized = session()
        .observer(log.clone())
        .synthesize()
        .expect("the rename synthesizes");
    assert_eq!(synthesized.outcome, SynthesisOutcome::Solved);
    assert!(synthesized.stats.value_correspondences >= 1);
    assert!(synthesized.program_text().contains("handle"));
    assert!(matches!(
        log.events().last(),
        Some(SynthesisEvent::Solved { .. })
    ));

    let emitted = synthesized.emit(dialect_by_name("ansi").unwrap());
    assert!(
        emitted
            .program_sql
            .contains("SELECT Users.handle FROM Users WHERE Users.uid = :uid;"),
        "{}",
        emitted.program_sql
    );
    assert_eq!(
        emitted.script.preamble[0],
        "ALTER TABLE Users RENAME TO legacy_Users;"
    );
    assert!(emitted.target_ddl.contains("CREATE TABLE Users"));

    let mut backend = backend_by_name("memory").unwrap();
    let validated = emitted
        .validate(backend.as_mut(), 3)
        .expect("memory backend runs");
    assert!(validated.ok(), "{:#?}", validated.outcome);
    assert!(validated.into_result().is_ok());

    // And the whole thing as one machine-readable document.
    let json = report::result_json(&synthesized, &emitted, None).to_pretty_string();
    let parsed = sqlbridge::Json::parse(&json).expect("report JSON parses");
    assert_eq!(
        parsed.get("outcome").and_then(|o| o.as_str()),
        Some("solved")
    );
    assert!(parsed.get("migration").is_some());
}

/// Every provided dialect emits and validates through the facade —
/// including the new MySQL dialect.
#[test]
fn every_dialect_emits_and_validates() {
    let synthesized = session().synthesize().expect("synthesizes");
    for name in ["ansi", "sqlite", "postgres", "mysql"] {
        let emitted = synthesized.emit(dialect_by_name(name).unwrap());
        let mut backend = backend_by_name("memory").unwrap();
        let validated = emitted
            .validate(backend.as_mut(), 3)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(validated.ok(), "{name}: {:#?}", validated.outcome);
        assert_eq!(validated.outcome.dialect, emitted.dialect.name());
    }
}

/// An expired deadline surfaces as `Unsolved` with outcome `Timeout` —
/// never `NoSolution` — and carries (partial) statistics.
#[test]
fn expired_deadline_is_reported_as_timeout() {
    let err = session().deadline(Duration::ZERO).synthesize().unwrap_err();
    assert_eq!(err.outcome(), Some(SynthesisOutcome::Timeout));
    let RefactorError::Unsolved { outcome, stats } = err else {
        panic!("expected Unsolved, got {err}");
    };
    assert_eq!(outcome, SynthesisOutcome::Timeout);
    // Partial stats: the run never got to explore the space.
    assert!(stats.value_correspondences <= 1);
    // The failure document carries the outcome kind.
    let json = report::failure_json(outcome, &stats, None).to_compact_string();
    assert!(json.contains("\"timeout\""), "{json}");
}

/// The deadline budget is per run and its clock starts at `synthesize()`:
/// time spent between configuring the builder and running it does not
/// count, and a session can be run repeatedly under one budget.
#[test]
fn deadline_budget_is_measured_from_run_start_and_is_per_run() {
    let session = session().deadline(Duration::from_millis(250));
    // Builder-time delay longer than the whole budget: must not count.
    std::thread::sleep(Duration::from_millis(300));
    let first = session.synthesize().expect("fresh budget at run start");
    assert_eq!(first.outcome, SynthesisOutcome::Solved);
    // And the second run gets a fresh budget too.
    let second = session.synthesize().expect("fresh budget per run");
    assert_eq!(second.outcome, SynthesisOutcome::Solved);
}

/// Cancelling the session's token from outside stops the run with outcome
/// `Cancelled`.
#[test]
fn external_cancellation_is_reported_as_cancelled() {
    let token = pipeline::CancelToken::new();
    let session = session().cancel_token(token.clone());
    token.cancel();
    let err = session.synthesize().unwrap_err();
    assert_eq!(err.outcome(), Some(SynthesisOutcome::Cancelled));
}

/// A deadline budget composes with an explicit cancel token: firing the
/// token stops a run that still has plenty of budget left.
#[test]
fn explicit_cancellation_fires_under_a_deadline_budget() {
    let token = pipeline::CancelToken::new();
    let session = session()
        .cancel_token(token.clone())
        .deadline(Duration::from_secs(3600));
    token.cancel();
    let err = session.synthesize().unwrap_err();
    assert_eq!(err.outcome(), Some(SynthesisOutcome::Cancelled));
}

/// A genuinely unsolvable refactoring still reports `NoSolution`.
#[test]
fn unsolvable_refactoring_reports_no_solution() {
    let err = Refactoring::from_ddl(
        "CREATE TABLE T (a INTEGER, b TEXT);",
        "CREATE TABLE T (a INTEGER);",
    )
    .unwrap()
    .program_text(
        r#"
        update add(a: int, b: string)
            INSERT INTO T VALUES (a: a, b: b);
        query get(a: int)
            SELECT b FROM T WHERE a = a;
        "#,
    )
    .unwrap()
    .synthesize()
    .unwrap_err();
    assert_eq!(err.outcome(), Some(SynthesisOutcome::NoSolution));
}

/// Program parse errors point at the program input and chain the source
/// error.
#[test]
fn program_errors_are_structured() {
    let err = Refactoring::from_ddl(SOURCE_DDL, TARGET_DDL)
        .unwrap()
        .program_text("update broken( SELECT;")
        .unwrap_err();
    assert!(matches!(err, RefactorError::Program { .. }));
    assert!(std::error::Error::source(&err).is_some());
}
