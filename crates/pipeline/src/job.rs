//! Serve-ready jobs: the typed unit of work a job server queues, runs and
//! reports.
//!
//! A [`JobSpec`] is everything one refactoring needs, carried by value —
//! DDL texts, the source program, dialect/config/backend names and the
//! wall-clock budget — so it can cross a wire as one JSON object and be
//! replayed deterministically on any worker. [`run_job`] drives the spec
//! through the [`Refactoring`] facade and always comes
//! back with a [`JobReport`]: an outcome kind plus exactly one JSON
//! document (success, failure-with-forensics, or input error), never a
//! panic across the worker boundary.
//!
//! A forensics [`SearchLedger`] is always attached: a failed job's report
//! explains *why* the search came up empty, which is precisely the case
//! where a remote caller cannot re-run locally to find out.

use std::sync::Arc;
use std::time::Duration;

use migrator::{CancelToken, SynthesisConfig, SynthesisObserver};
use obs::{PipelineObserver, SearchLedger};
use sqlbridge::{dialect_by_name, Json};

use crate::{backend_by_name, report, RefactorError, Refactoring};

/// A complete, self-contained description of one refactoring job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Source-schema DDL text.
    pub source_ddl: String,
    /// Target-schema DDL text.
    pub target_ddl: String,
    /// Source program in `dbir` concrete syntax.
    pub program: String,
    /// Emission dialect name (default `sqlite`).
    pub dialect: String,
    /// Synthesis configuration name: `standard`, `widened` or
    /// `enumerative` (default `standard`).
    pub config: String,
    /// Override for the value-correspondence cap of the chosen config.
    pub max_value_correspondences: Option<usize>,
    /// Wall-clock budget in seconds; `None` runs unbounded (the server may
    /// still cancel explicitly).
    pub budget_secs: Option<f64>,
    /// Whether to execute + validate the emitted migration (default true).
    pub validate: bool,
    /// Validation backend name: `memory` or `sqlite3` (default `memory`).
    pub backend: String,
    /// Seed rows per source table for validation (default 3).
    pub rows: usize,
}

impl JobSpec {
    /// A spec over the three required inputs, with every knob at its
    /// default.
    pub fn new(
        source_ddl: impl Into<String>,
        target_ddl: impl Into<String>,
        program: impl Into<String>,
    ) -> JobSpec {
        JobSpec {
            source_ddl: source_ddl.into(),
            target_ddl: target_ddl.into(),
            program: program.into(),
            dialect: "sqlite".to_string(),
            config: "standard".to_string(),
            max_value_correspondences: None,
            budget_secs: None,
            validate: true,
            backend: "memory".to_string(),
            rows: 3,
        }
    }

    /// Parses a spec from its JSON encoding, validating every enumerated
    /// field eagerly so a bad submission is rejected before it is queued.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending field.
    pub fn from_json(json: &Json) -> Result<JobSpec, String> {
        let required = |key: &str| -> Result<String, String> {
            match json.get(key).and_then(Json::as_str) {
                Some(text) if !text.trim().is_empty() => Ok(text.to_string()),
                Some(_) => Err(format!("field `{key}` is empty")),
                None => Err(format!("missing required string field `{key}`")),
            }
        };
        let mut spec = JobSpec::new(
            required("source_ddl")?,
            required("target_ddl")?,
            required("program")?,
        );
        if let Some(value) = json.get("dialect") {
            let name = value
                .as_str()
                .ok_or_else(|| "field `dialect` must be a string".to_string())?;
            if dialect_by_name(name).is_none() {
                return Err(format!("unknown dialect `{name}`"));
            }
            spec.dialect = name.to_string();
        }
        if let Some(value) = json.get("config") {
            let name = value
                .as_str()
                .ok_or_else(|| "field `config` must be a string".to_string())?;
            if !matches!(name, "standard" | "widened" | "enumerative") {
                return Err(format!(
                    "unknown config `{name}` (expected `standard`, `widened` or `enumerative`)"
                ));
            }
            spec.config = name.to_string();
        }
        if let Some(value) = json.get("max_value_correspondences") {
            let cap = value.as_i128().filter(|v| *v > 0).ok_or_else(|| {
                "field `max_value_correspondences` must be a positive integer".to_string()
            })?;
            spec.max_value_correspondences = Some(cap as usize);
        }
        if let Some(value) = json.get("budget_secs") {
            let budget = value
                .as_f64()
                .filter(|v| v.is_finite() && *v > 0.0)
                .ok_or_else(|| "field `budget_secs` must be a positive number".to_string())?;
            spec.budget_secs = Some(budget);
        }
        if let Some(value) = json.get("validate") {
            spec.validate = value
                .as_bool()
                .ok_or_else(|| "field `validate` must be a boolean".to_string())?;
        }
        if let Some(value) = json.get("backend") {
            let name = value
                .as_str()
                .ok_or_else(|| "field `backend` must be a string".to_string())?;
            if !matches!(name, "memory" | "sqlite3") {
                return Err(format!(
                    "unknown backend `{name}` (expected `memory` or `sqlite3`)"
                ));
            }
            spec.backend = name.to_string();
        }
        if let Some(value) = json.get("rows") {
            let rows = value
                .as_i128()
                .filter(|v| (1..=10_000).contains(v))
                .ok_or_else(|| "field `rows` must be an integer in 1..=10000".to_string())?;
            spec.rows = rows as usize;
        }
        Ok(spec)
    }

    /// The JSON encoding [`JobSpec::from_json`] parses.
    pub fn to_json(&self) -> Json {
        let mut json = Json::object()
            .with("source_ddl", Json::str(&self.source_ddl))
            .with("target_ddl", Json::str(&self.target_ddl))
            .with("program", Json::str(&self.program))
            .with("dialect", Json::str(&self.dialect))
            .with("config", Json::str(&self.config))
            .with("validate", Json::Bool(self.validate))
            .with("backend", Json::str(&self.backend))
            .with("rows", Json::from(self.rows));
        if let Some(cap) = self.max_value_correspondences {
            json = json.with("max_value_correspondences", Json::from(cap));
        }
        if let Some(budget) = self.budget_secs {
            json = json.with("budget_secs", Json::Float(budget));
        }
        json
    }

    /// The synthesis configuration the spec names, with the
    /// value-correspondence cap applied.
    fn synthesis_config(&self) -> SynthesisConfig {
        let mut config = match self.config.as_str() {
            "widened" => SynthesisConfig::widened(),
            "enumerative" => SynthesisConfig::enumerative_baseline(),
            _ => SynthesisConfig::standard(),
        };
        if let Some(cap) = self.max_value_correspondences {
            config.max_value_correspondences = cap;
        }
        config
    }
}

/// What one finished job reports back: an outcome kind and exactly one
/// JSON document.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// `solved`, `no_solution`, `timeout`, `cancelled` — or `error` when
    /// the inputs never made it into a synthesis run (bad DDL, bad
    /// program, backend unavailable).
    pub outcome: String,
    /// `true` only for a solved job whose validation (if requested)
    /// matched.
    pub ok: bool,
    /// The result document: [`report::result_json`] on success,
    /// [`report::failure_json`] (forensics attached) for unsolved runs, or
    /// an `{"outcome": "error", "error": ...}` object for input errors.
    pub document: Json,
}

fn error_report(error: &RefactorError) -> JobReport {
    JobReport {
        outcome: "error".to_string(),
        ok: false,
        document: Json::object()
            .with("outcome", Json::str("error"))
            .with("error", Json::str(error.to_string()))
            .with("usage", Json::Bool(error.is_usage())),
    }
}

/// Runs one job to completion on the calling thread.
///
/// The installed `cancel` token is linked with the spec's own
/// `budget_secs`, so a job stops at whichever fires first — the server's
/// explicit `cancel` / shutdown, or the submitted per-job budget (which
/// then reports [`migrator::SynthesisOutcome::Timeout`], never
/// `no_solution`). Both observers receive the run's deterministic main
/// stream; a forensics [`SearchLedger`] is always attached so failed jobs
/// explain themselves.
///
/// Never panics across this boundary and never returns early without a
/// report: every input error becomes an `outcome == "error"` report.
pub fn run_job(
    spec: &JobSpec,
    cancel: CancelToken,
    observer: Option<Arc<dyn SynthesisObserver>>,
    pipeline_observer: Option<Arc<dyn PipelineObserver>>,
) -> JobReport {
    let ledger = Arc::new(SearchLedger::new());
    let session = match Refactoring::from_ddl(&spec.source_ddl, &spec.target_ddl) {
        Ok(session) => session,
        Err(error) => return error_report(&error),
    };
    let session = match session.program_text(&spec.program) {
        Ok(session) => session,
        Err(error) => return error_report(&error),
    };
    let mut session = session
        .config(spec.synthesis_config())
        .cancel_token(cancel)
        .forensics(ledger.clone());
    if let Some(budget) = spec.budget_secs {
        session = session.deadline(Duration::from_secs_f64(budget));
    }
    if let Some(observer) = observer {
        session = session.observer(observer);
    }
    if let Some(observer) = pipeline_observer {
        session = session.pipeline_observer(observer);
    }

    let synthesized = match session.synthesize() {
        Ok(synthesized) => synthesized,
        Err(RefactorError::Unsolved { outcome, stats }) => {
            return JobReport {
                outcome: outcome.as_str().to_string(),
                ok: false,
                document: report::failure_json(outcome, &stats, Some(&ledger)),
            };
        }
        Err(error) => return error_report(&error),
    };
    // `dialect` was validated at parse time, but a spec can also be built
    // directly; fall back to an input error instead of unwrapping.
    let Some(dialect) = dialect_by_name(&spec.dialect) else {
        return error_report(&RefactorError::InvalidConfig {
            message: format!("unknown dialect `{}`", spec.dialect),
        });
    };
    let emitted = synthesized.emit(dialect);
    let validation = if spec.validate {
        let mut backend = match backend_by_name(&spec.backend) {
            Ok(backend) => backend,
            Err(error) => return error_report(&error),
        };
        match emitted.validate(backend.as_mut(), spec.rows) {
            Ok(validated) => Some(validated.outcome),
            Err(error) => return error_report(&error),
        }
    } else {
        None
    };
    let ok = validation.as_ref().map(|v| v.ok).unwrap_or(true);
    JobReport {
        outcome: synthesized.outcome.as_str().to_string(),
        ok,
        document: report::result_json(&synthesized, &emitted, validation.as_ref()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SOURCE: &str = "CREATE TABLE Users (uid INTEGER PRIMARY KEY, nick TEXT);";
    const TARGET: &str = "CREATE TABLE Users (uid INTEGER PRIMARY KEY, handle TEXT);";
    const PROGRAM: &str = r#"
        update addUser(uid: int, nick: string)
            INSERT INTO Users VALUES (uid: uid, nick: nick);
        query getUser(uid: int)
            SELECT nick FROM Users WHERE uid = uid;
    "#;

    #[test]
    fn spec_round_trips_through_json() {
        let mut spec = JobSpec::new(SOURCE, TARGET, PROGRAM);
        spec.config = "widened".to_string();
        spec.budget_secs = Some(2.5);
        spec.rows = 5;
        let parsed = JobSpec::from_json(&spec.to_json()).expect("round-trips");
        assert_eq!(parsed, spec);
    }

    #[test]
    fn from_json_rejects_bad_fields() {
        // `Json::with` appends (first key wins on lookup), so each bad
        // spec is built from the required fields alone.
        let base = || {
            Json::object()
                .with("source_ddl", Json::str(SOURCE))
                .with("target_ddl", Json::str(TARGET))
                .with("program", Json::str(PROGRAM))
        };
        assert!(JobSpec::from_json(&Json::object())
            .unwrap_err()
            .contains("source_ddl"));
        let bad_dialect = base().with("dialect", Json::str("oracle"));
        assert!(JobSpec::from_json(&bad_dialect)
            .unwrap_err()
            .contains("dialect"));
        let bad_config = base().with("config", Json::str("turbo"));
        assert!(JobSpec::from_json(&bad_config)
            .unwrap_err()
            .contains("config"));
        let bad_budget = base().with("budget_secs", Json::from(-1.0));
        assert!(JobSpec::from_json(&bad_budget)
            .unwrap_err()
            .contains("budget_secs"));
        let bad_backend = base().with("backend", Json::str("postgres"));
        assert!(JobSpec::from_json(&bad_backend)
            .unwrap_err()
            .contains("backend"));
    }

    #[test]
    fn run_job_solves_and_validates_a_rename() {
        let spec = JobSpec::new(SOURCE, TARGET, PROGRAM);
        let report = run_job(&spec, CancelToken::new(), None, None);
        assert_eq!(report.outcome, "solved", "{:?}", report.document);
        assert!(report.ok);
        assert_eq!(
            report.document.get("outcome").and_then(Json::as_str),
            Some("solved")
        );
        assert!(report.document.get("validation").is_some());
    }

    #[test]
    fn run_job_reports_input_errors_as_documents() {
        let mut spec = JobSpec::new("CREATE TABLE broken(", TARGET, PROGRAM);
        spec.validate = false;
        let report = run_job(&spec, CancelToken::new(), None, None);
        assert_eq!(report.outcome, "error");
        assert!(!report.ok);
        assert!(report
            .document
            .get("error")
            .and_then(Json::as_str)
            .is_some());
    }

    #[test]
    fn run_job_attaches_forensics_to_failures() {
        // An impossible refactoring: the target schema dropped the column
        // the program reads, so no equivalent program exists.
        let spec = JobSpec::new(
            SOURCE,
            "CREATE TABLE Users (uid INTEGER PRIMARY KEY);",
            PROGRAM,
        );
        let report = run_job(&spec, CancelToken::new(), None, None);
        assert_eq!(report.outcome, "no_solution", "{:?}", report.document);
        assert!(!report.ok);
        assert_ne!(report.document.get("forensics"), Some(&Json::Null));
    }

    #[test]
    fn cancelled_token_reports_cancelled_not_no_solution() {
        let token = CancelToken::new();
        token.cancel();
        let spec = JobSpec::new(SOURCE, TARGET, PROGRAM);
        let report = run_job(&spec, token, None, None);
        assert_eq!(report.outcome, "cancelled", "{:?}", report.document);
    }
}
