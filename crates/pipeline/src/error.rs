//! The structured error type unifying every layer of the pipeline.
//!
//! Before this type existed, failures crossed the public seam as
//! `(i32, String)` pairs: the CLI formatted errors eagerly and every other
//! client had to re-parse strings to tell a DDL typo from an unsatisfiable
//! refactoring. [`RefactorError`] keeps each layer's original error —
//! span-carrying [`SqlError`]s from the SQL boundary, [`dbir::Error`]s from
//! the program parser, [`BackendError`]s from execution — reachable through
//! [`std::error::Error::source`], and represents "no program found" as data
//! ([`RefactorError::Unsolved`] with the run's [`SynthesisOutcome`] and
//! partial statistics) rather than prose.

use std::fmt;
use std::path::PathBuf;

use migrator::{SynthesisOutcome, SynthesisStats};
use sqlbridge::SqlError;
use sqlexec::{BackendError, ValidationOutcome};

/// Which of the three pipeline inputs an error refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputKind {
    /// The source-schema DDL.
    SourceSchema,
    /// The target-schema DDL.
    TargetSchema,
    /// The source program.
    Program,
}

impl fmt::Display for InputKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InputKind::SourceSchema => "source schema",
            InputKind::TargetSchema => "target schema",
            InputKind::Program => "source program",
        })
    }
}

/// Everything that can go wrong between DDL text and a validated migration.
///
/// Variants keep the underlying layer's error intact (and reachable via
/// [`std::error::Error::source`]); `Display` renders a one-line summary
/// followed by the source error's own rendering — for [`SqlError`]s that
/// includes the span-annotated source excerpt.
#[derive(Debug)]
pub enum RefactorError {
    /// An input file could not be read.
    Read {
        /// The file that could not be read.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// One of the DDL inputs failed to parse or resolve.
    Ddl {
        /// Which schema input the DDL belonged to.
        input: InputKind,
        /// Where the input came from (a path, or `<inline>`).
        origin: String,
        /// The span-carrying parse error.
        source: SqlError,
    },
    /// The source program failed to parse or validate against the source
    /// schema.
    Program {
        /// Where the program came from (a path, or `<inline>`).
        origin: String,
        /// The underlying dbir error (line/column-carrying for syntax
        /// errors).
        source: dbir::Error,
    },
    /// A configuration value is unusable (unknown dialect or backend name,
    /// out-of-range numeric option, a missing input).
    InvalidConfig {
        /// What was wrong.
        message: String,
    },
    /// Synthesis finished without producing a program. The outcome
    /// distinguishes a genuinely exhausted search space
    /// ([`SynthesisOutcome::NoSolution`]) from a wall-clock timeout or an
    /// explicit cancellation — callers must not conflate them: a timeout
    /// says nothing about satisfiability.
    Unsolved {
        /// Why the run produced no program (`NoSolution`, `Timeout` or
        /// `Cancelled`; never `Solved`).
        outcome: SynthesisOutcome,
        /// The statistics accumulated before the run ended (partial for
        /// timeouts and cancellations).
        stats: Box<SynthesisStats>,
    },
    /// The validation backend could not run the emitted migration at all
    /// (as opposed to running it and finding a mismatch).
    Backend {
        /// The underlying backend error.
        source: BackendError,
    },
    /// The migration executed but the resulting target instance did not
    /// match the dbir-level prediction.
    ValidationFailed {
        /// The full outcome, with per-table diffs.
        outcome: Box<ValidationOutcome>,
    },
}

impl fmt::Display for RefactorError {
    /// Renders a one-line summary plus the source error's own rendering —
    /// for SQL errors that includes the span-annotated source excerpt.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefactorError::Read { path, source } => {
                write!(f, "cannot read {}: {source}", path.display())
            }
            RefactorError::Ddl {
                input,
                origin,
                source,
            } => {
                write!(f, "in {origin} ({input}):\n{source}")
            }
            RefactorError::Program { origin, source } => {
                write!(f, "in {origin}: {source}")
            }
            RefactorError::InvalidConfig { message } => f.write_str(message),
            RefactorError::Unsolved { outcome, .. } => match outcome {
                SynthesisOutcome::NoSolution => {
                    f.write_str("no equivalent program found within the configured budget")
                }
                SynthesisOutcome::Timeout => f.write_str(
                    "synthesis exceeded its wall-clock deadline before finding a program \
                     (the refactoring may still be solvable with a larger budget)",
                ),
                SynthesisOutcome::Cancelled => f.write_str("synthesis was cancelled"),
                SynthesisOutcome::Solved => unreachable!("Unsolved never carries Solved"),
            },
            RefactorError::Backend { source } => {
                write!(f, "validation could not run: {source}")
            }
            RefactorError::ValidationFailed { outcome } => {
                write!(f, "validation FAILED on backend `{}`:", outcome.backend)?;
                for diff in &outcome.diffs {
                    write!(f, "\n  {diff}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for RefactorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RefactorError::Read { source, .. } => Some(source),
            RefactorError::Ddl { source, .. } => Some(source),
            RefactorError::Program { source, .. } => Some(source),
            RefactorError::Backend { source, .. } => Some(source),
            RefactorError::InvalidConfig { .. }
            | RefactorError::Unsolved { .. }
            | RefactorError::ValidationFailed { .. } => None,
        }
    }
}

impl RefactorError {
    /// The synthesis outcome for unsolved runs, `None` for every other
    /// error kind.
    pub fn outcome(&self) -> Option<SynthesisOutcome> {
        match self {
            RefactorError::Unsolved { outcome, .. } => Some(*outcome),
            _ => None,
        }
    }

    /// `true` for errors caused by the caller's inputs or configuration
    /// (usage errors, in CLI terms) rather than by the pipeline's work.
    pub fn is_usage(&self) -> bool {
        matches!(self, RefactorError::InvalidConfig { .. })
    }
}
