//! The JSON-lines wire format for the pipeline's event streams.
//!
//! Every [`SynthesisEvent`] and [`PipelineEvent`] has a structured JSON
//! encoding here, and [`NdjsonWriter`] streams them — one compact JSON
//! object per line — to any `Write` sink. This is the `--events` export of
//! the `migrate` CLI and the wire format the ROADMAP's
//! migration-as-a-service daemon will speak: a client that tails the file
//! (or the socket) sees the run progress event by event and can stop
//! parsing at any line boundary.
//!
//! Line discipline:
//!
//! * every line is one well-formed JSON object with a `"type"` field;
//! * every line carries `"seq"`, a strictly increasing sequence number
//!   across *both* streams (synthesis and pipeline events interleave in
//!   delivery order);
//! * scheduling-dependent speculation notices are tagged
//!   `"channel": "speculation"` so deterministic consumers can filter
//!   them out;
//! * a terminal `{"type": "run_finished", "outcome": ...}` line closes
//!   the stream (written by [`NdjsonWriter::finish`]).
//!
//! The `tracecheck ndjson` subcommand validates exactly this discipline.

use std::io::Write;
use std::sync::{Arc, Condvar, Mutex};

use migrator::{CancelReason, SynthesisEvent, SynthesisObserver};
use obs::{PipelineEvent, PipelineObserver};
use sqlbridge::Json;

/// Encodes one synthesis event as a structured JSON object (without the
/// writer's `seq` / `channel` framing fields).
pub fn synthesis_event_json(event: &SynthesisEvent) -> Json {
    match event {
        SynthesisEvent::CorrespondenceEnumerated {
            index,
            mapped_attrs,
        } => Json::object()
            .with("type", Json::str("correspondence_enumerated"))
            .with("index", Json::from(*index))
            .with("mapped_attrs", Json::from(*mapped_attrs)),
        SynthesisEvent::CorrespondenceSpeculated { index } => Json::object()
            .with("type", Json::str("correspondence_speculated"))
            .with("index", Json::from(*index)),
        SynthesisEvent::CorrespondenceCancelled { index } => Json::object()
            .with("type", Json::str("correspondence_cancelled"))
            .with("index", Json::from(*index)),
        SynthesisEvent::SketchGenerated {
            index,
            holes,
            completions,
        } => Json::object()
            .with("type", Json::str("sketch_generated"))
            .with("index", Json::from(*index))
            .with("holes", Json::from(*holes))
            .with("completions", Json::str(completions.to_string())),
        SynthesisEvent::SketchGenerationFailed { index } => Json::object()
            .with("type", Json::str("sketch_generation_failed"))
            .with("index", Json::from(*index)),
        SynthesisEvent::CandidateChecked {
            index,
            iteration,
            accepted,
            sequences_tested,
        } => Json::object()
            .with("type", Json::str("candidate_checked"))
            .with("index", Json::from(*index))
            .with("iteration", Json::from(*iteration))
            .with("accepted", Json::from(*accepted))
            .with("sequences_tested", Json::from(*sequences_tested)),
        SynthesisEvent::CandidateSpeculated {
            index,
            iteration,
            adopted,
        } => Json::object()
            .with("type", Json::str("candidate_speculated"))
            .with("index", Json::from(*index))
            .with("iteration", Json::from(*iteration))
            .with("adopted", Json::from(*adopted)),
        SynthesisEvent::MfiFound {
            index,
            iteration,
            updates,
            query,
            blocked_holes,
            pruned,
            domains,
        } => {
            let domains = domains
                .iter()
                .map(|&(kind, count)| {
                    Json::object()
                        .with("domain", Json::str(kind))
                        .with("count", Json::from(count))
                })
                .collect();
            Json::object()
                .with("type", Json::str("mfi_found"))
                .with("index", Json::from(*index))
                .with("iteration", Json::from(*iteration))
                .with("updates", Json::from(*updates))
                .with("query", Json::str(query))
                .with("blocked_holes", Json::from(*blocked_holes))
                .with("pruned", Json::str(pruned.to_string()))
                .with("domains", Json::Array(domains))
        }
        SynthesisEvent::BoundExhausted {
            index,
            iterations,
            space_exhausted,
        } => Json::object()
            .with("type", Json::str("bound_exhausted"))
            .with("index", Json::from(*index))
            .with("iterations", Json::from(*iterations))
            .with("space_exhausted", Json::from(*space_exhausted)),
        SynthesisEvent::Solved { index, iterations } => Json::object()
            .with("type", Json::str("solved"))
            .with("index", Json::from(*index))
            .with("iterations", Json::from(*iterations)),
        SynthesisEvent::FrontierDrained {
            produced,
            infeasible,
        } => Json::object()
            .with("type", Json::str("frontier_drained"))
            .with("produced", Json::from(*produced))
            .with("infeasible", Json::from(*infeasible)),
        SynthesisEvent::FrontierBudgetReached { explored } => Json::object()
            .with("type", Json::str("frontier_budget_reached"))
            .with("explored", Json::from(*explored)),
        SynthesisEvent::RunInterrupted { reason } => Json::object()
            .with("type", Json::str("run_interrupted"))
            .with(
                "reason",
                Json::str(match reason {
                    CancelReason::Cancelled => "cancelled",
                    CancelReason::DeadlineExceeded => "deadline_exceeded",
                }),
            ),
    }
}

/// Encodes one pipeline event as a structured JSON object.
pub fn pipeline_event_json(event: &PipelineEvent) -> Json {
    match event {
        PipelineEvent::DdlParsed { input, tables } => Json::object()
            .with("type", Json::str("ddl_parsed"))
            .with("input", Json::str(input))
            .with("tables", Json::from(*tables)),
        PipelineEvent::Emitted {
            dialect,
            functions,
            statements,
        } => Json::object()
            .with("type", Json::str("emitted"))
            .with("dialect", Json::str(dialect))
            .with("functions", Json::from(*functions))
            .with("statements", Json::from(*statements)),
        PipelineEvent::DataMovePlanned {
            target,
            tables,
            statement,
            statements,
        } => Json::object()
            .with("type", Json::str("data_move_planned"))
            .with("target", Json::str(target))
            .with(
                "tables",
                Json::Array(tables.iter().map(Json::str).collect()),
            )
            .with("statement", Json::from(*statement))
            .with("statements", Json::from(*statements)),
        PipelineEvent::DataMoved {
            backend,
            table,
            statement,
            statements,
            rows,
        } => Json::object()
            .with("type", Json::str("data_moved"))
            .with("backend", Json::str(backend))
            .with("table", Json::str(table))
            .with("statement", Json::from(*statement))
            .with("statements", Json::from(*statements))
            .with("rows", Json::from(*rows)),
        PipelineEvent::ScriptStaged {
            backend,
            seeded_rows,
            statements,
        } => Json::object()
            .with("type", Json::str("script_staged"))
            .with("backend", Json::str(backend))
            .with("seeded_rows", Json::from(*seeded_rows))
            .with("statements", Json::from(*statements)),
        PipelineEvent::BackendStatementExecuted {
            backend,
            phase,
            statements,
        } => Json::object()
            .with("type", Json::str("backend_statement_executed"))
            .with("backend", Json::str(backend))
            .with("phase", Json::str(phase))
            .with("statements", Json::from(*statements)),
        PipelineEvent::ValidationCompared {
            backend,
            ok,
            tables_compared,
            diffs,
        } => Json::object()
            .with("type", Json::str("validation_compared"))
            .with("backend", Json::str(backend))
            .with("ok", Json::from(*ok))
            .with("tables_compared", Json::from(*tables_compared))
            .with("diffs", Json::from(*diffs)),
    }
}

/// Why an [`NdjsonWriter`] stopped accepting events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NdjsonError {
    /// The underlying sink failed; lines after the failure were dropped.
    SinkFailed,
    /// An event arrived after [`NdjsonWriter::finish`] wrote the terminal
    /// `run_finished` line. The stream contract promises consumers that
    /// nothing follows the terminal line, so a late event is a caller bug —
    /// typically an observer still installed somewhere after the run was
    /// declared over — and must not be silently swallowed.
    WriteAfterFinish,
}

impl std::fmt::Display for NdjsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NdjsonError::SinkFailed => write!(f, "the NDJSON sink failed"),
            NdjsonError::WriteAfterFinish => {
                write!(f, "an event arrived after the terminal `run_finished` line")
            }
        }
    }
}

impl std::error::Error for NdjsonError {}

struct NdjsonState {
    sink: Box<dyn Write + Send>,
    seq: u64,
    finished: bool,
    error: Option<NdjsonError>,
}

/// Streams both event channels to a sink as JSON lines.
///
/// Implements [`SynthesisObserver`] *and* [`PipelineObserver`], so one
/// writer (behind an `Arc`) can be installed as both the synthesis
/// observer and the pipeline observer of a session. Each event becomes one
/// compact JSON line with a strictly increasing `"seq"` field; speculation
/// side-channel notices additionally carry `"channel": "speculation"`.
/// Call [`finish`](NdjsonWriter::finish) when the run ends — whichever way
/// it ends — to append the terminal `run_finished` line and flush.
///
/// Sink errors are swallowed after the first failure (an observer must not
/// panic mid-search); [`finish`](NdjsonWriter::finish) reports whether
/// every line made it out, and [`error`](NdjsonWriter::error) names the
/// failure class. Once `finish` has written the terminal line the stream
/// is sealed: a later event (or a second `finish`) is recorded as
/// [`NdjsonError::WriteAfterFinish`] and never reaches the sink — a
/// multi-consumer stream whose consumers stop at `run_finished` must not
/// quietly grow a tail nobody reads.
pub struct NdjsonWriter {
    state: Mutex<NdjsonState>,
}

impl std::fmt::Debug for NdjsonWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NdjsonWriter").finish_non_exhaustive()
    }
}

impl NdjsonWriter {
    /// A writer over any sink (a file for `--events`, a socket for the
    /// future daemon).
    pub fn new(sink: Box<dyn Write + Send>) -> NdjsonWriter {
        NdjsonWriter {
            state: Mutex::new(NdjsonState {
                sink,
                seq: 0,
                finished: false,
                error: None,
            }),
        }
    }

    fn write_line(&self, json: Json, speculation: bool) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.finished {
            state.error.get_or_insert(NdjsonError::WriteAfterFinish);
            return;
        }
        if state.error.is_some() {
            return;
        }
        let mut json = json.with("seq", Json::from(state.seq as usize));
        if speculation {
            json = json.with("channel", Json::str("speculation"));
        }
        state.seq += 1;
        let line = json.to_compact_string();
        let sink = &mut state.sink;
        if writeln!(sink, "{line}").is_err() {
            state.error = Some(NdjsonError::SinkFailed);
        }
    }

    /// Writes the terminal `run_finished` line, flushes the sink and seals
    /// the stream. Returns `false` if any write or the flush failed — or if
    /// the stream was already sealed (a second `finish` is a
    /// [`NdjsonError::WriteAfterFinish`] like any other late write).
    pub fn finish(&self, outcome: &str) -> bool {
        self.write_line(
            Json::object()
                .with("type", Json::str("run_finished"))
                .with("outcome", Json::str(outcome)),
            false,
        );
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if !state.finished {
            state.finished = true;
            if state.sink.flush().is_err() {
                state.error.get_or_insert(NdjsonError::SinkFailed);
            }
        }
        state.error.is_none()
    }

    /// Why the stream stopped accepting events, if it did. `None` means
    /// every line (including the terminal one, once written) made it out.
    pub fn error(&self) -> Option<NdjsonError> {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).error
    }
}

impl SynthesisObserver for NdjsonWriter {
    fn event(&self, event: &SynthesisEvent) {
        self.write_line(synthesis_event_json(event), false);
    }

    fn speculation(&self, event: &SynthesisEvent) {
        self.write_line(synthesis_event_json(event), true);
    }
}

impl PipelineObserver for NdjsonWriter {
    fn pipeline_event(&self, event: &PipelineEvent) {
        self.write_line(pipeline_event_json(event), false);
    }
}

/// Shared state of a [`LineBus`]: the full line history plus whether the
/// stream is closed.
struct LineBusState {
    lines: Vec<String>,
    closed: bool,
    /// Bytes received that are not yet terminated by `\n` (the bus is a
    /// `Write` sink, and one logical line may arrive as several writes).
    partial: String,
}

/// A replayable fan-out of one NDJSON stream to any number of subscribers.
///
/// The job server's `watch` command needs every subscriber — whether it
/// connected before the job started or long after it finished — to see the
/// *same complete stream*. A plain broadcast would lose the prefix for late
/// subscribers, so the bus keeps the full line history (job streams are
/// bounded: one run's events) and hands each [`LineFollower`] its own
/// cursor into it. Followers block on a condvar until new lines arrive or
/// the bus closes.
///
/// The bus implements [`Write`], so it can serve directly as an
/// [`NdjsonWriter`] sink: whatever framing the writer produces is replayed
/// verbatim, keeping watched streams byte-identical to a file export of
/// the same run.
pub struct LineBus {
    state: Mutex<LineBusState>,
    wakeup: Condvar,
}

impl std::fmt::Debug for LineBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("LineBus")
            .field("lines", &state.lines.len())
            .field("closed", &state.closed)
            .finish()
    }
}

impl Default for LineBus {
    fn default() -> LineBus {
        LineBus::new()
    }
}

impl LineBus {
    /// An empty, open bus.
    pub fn new() -> LineBus {
        LineBus {
            state: Mutex::new(LineBusState {
                lines: Vec::new(),
                closed: false,
                partial: String::new(),
            }),
            wakeup: Condvar::new(),
        }
    }

    /// Appends one complete line (without trailing newline).
    pub fn push(&self, line: String) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.lines.push(line);
        self.wakeup.notify_all();
    }

    /// Closes the bus: followers drain the remaining history and then see
    /// `None`. A trailing unterminated fragment is flushed as a final line.
    pub fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if !state.partial.is_empty() {
            let line = std::mem::take(&mut state.partial);
            state.lines.push(line);
        }
        state.closed = true;
        self.wakeup.notify_all();
    }

    /// Whether [`close`](LineBus::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).closed
    }

    /// A snapshot of every line pushed so far.
    pub fn lines(&self) -> Vec<String> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .lines
            .clone()
    }

    /// A new follower positioned at the start of the history, so every
    /// subscriber replays the complete stream regardless of when it joined.
    pub fn follow(self: &Arc<Self>) -> LineFollower {
        LineFollower {
            bus: Arc::clone(self),
            cursor: 0,
        }
    }
}

impl Write for &LineBus {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let text = String::from_utf8_lossy(buf);
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.closed {
            return Err(std::io::Error::other("line bus closed"));
        }
        let mut pushed = false;
        for ch in text.chars() {
            if ch == '\n' {
                let line = std::mem::take(&mut state.partial);
                state.lines.push(line);
                pushed = true;
            } else {
                state.partial.push(ch);
            }
        }
        if pushed {
            self.wakeup.notify_all();
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// An owning [`Write`] adapter over an [`Arc<LineBus>`], suitable as a
/// boxed [`NdjsonWriter`] sink.
#[derive(Debug, Clone)]
pub struct LineBusSink(pub Arc<LineBus>);

impl Write for LineBusSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        (&*self.0).write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// One subscriber's cursor into a [`LineBus`] (see [`LineBus::follow`]).
#[derive(Debug)]
pub struct LineFollower {
    bus: Arc<LineBus>,
    cursor: usize,
}

impl LineFollower {
    /// The next line, blocking until one arrives. `None` once the bus is
    /// closed and the history is drained.
    pub fn next_line(&mut self) -> Option<String> {
        let mut state = self.bus.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if self.cursor < state.lines.len() {
                let line = state.lines[self.cursor].clone();
                self.cursor += 1;
                return Some(line);
            }
            if state.closed {
                return None;
            }
            state = self
                .bus
                .wakeup
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Like [`next_line`](LineFollower::next_line), but gives up after
    /// `timeout` so a server can poll a client-side disconnect between
    /// waits. `Ok(None)` means closed-and-drained; `Err(())` means no line
    /// arrived within the timeout.
    #[allow(clippy::result_unit_err)]
    pub fn next_line_timeout(
        &mut self,
        timeout: std::time::Duration,
    ) -> Result<Option<String>, ()> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.bus.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if self.cursor < state.lines.len() {
                let line = state.lines[self.cursor].clone();
                self.cursor += 1;
                return Ok(Some(line));
            }
            if state.closed {
                return Ok(None);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(());
            }
            let (next, _timed_out) = self
                .bus
                .wakeup
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            state = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A sink the test can read back: writes land in a shared buffer.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn events_stream_as_sequenced_json_lines_with_terminal_event() {
        let buf = SharedBuf::default();
        let writer = NdjsonWriter::new(Box::new(buf.clone()));
        writer.pipeline_event(&PipelineEvent::DdlParsed {
            input: "source".to_string(),
            tables: 2,
        });
        writer.event(&SynthesisEvent::CorrespondenceEnumerated {
            index: 0,
            mapped_attrs: 3,
        });
        writer.speculation(&SynthesisEvent::CorrespondenceSpeculated { index: 1 });
        writer.event(&SynthesisEvent::MfiFound {
            index: 0,
            iteration: 1,
            updates: 2,
            query: "getUser".to_string(),
            blocked_holes: 3,
            pruned: 12,
            domains: vec![("attr", 2), ("join", 1)],
        });
        assert!(writer.finish("no_solution"));
        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        let mut last_seq = -1i128;
        for line in &lines {
            let json = Json::parse(line).expect("every line parses");
            let seq = json.get("seq").and_then(Json::as_i128).expect("seq");
            assert!(seq > last_seq, "seq must be strictly increasing");
            last_seq = seq;
            assert!(json.get("type").and_then(Json::as_str).is_some());
        }
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(first.get("type").and_then(Json::as_str), Some("ddl_parsed"));
        let spec = Json::parse(lines[2]).unwrap();
        assert_eq!(
            spec.get("channel").and_then(Json::as_str),
            Some("speculation")
        );
        let mfi = Json::parse(lines[3]).unwrap();
        assert_eq!(mfi.get("pruned").and_then(Json::as_str), Some("12"));
        assert_eq!(
            mfi.get("domains").and_then(Json::as_array).map(|a| a.len()),
            Some(2)
        );
        let last = Json::parse(lines[4]).unwrap();
        assert_eq!(
            last.get("type").and_then(Json::as_str),
            Some("run_finished")
        );
        assert_eq!(
            last.get("outcome").and_then(Json::as_str),
            Some("no_solution")
        );
    }

    #[test]
    fn a_failing_sink_reports_failure_without_panicking() {
        struct FailingSink;
        impl Write for FailingSink {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("sink closed"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Err(std::io::Error::other("sink closed"))
            }
        }
        let writer = NdjsonWriter::new(Box::new(FailingSink));
        writer.event(&SynthesisEvent::Solved {
            index: 0,
            iterations: 1,
        });
        assert!(!writer.finish("solved"));
        assert_eq!(writer.error(), Some(NdjsonError::SinkFailed));
    }

    #[test]
    fn writes_after_finish_are_an_error_not_a_silent_latch() {
        let buf = SharedBuf::default();
        let writer = NdjsonWriter::new(Box::new(buf.clone()));
        writer.event(&SynthesisEvent::Solved {
            index: 0,
            iterations: 1,
        });
        assert!(writer.finish("solved"));
        assert_eq!(writer.error(), None);
        // A late event must be surfaced, and must not reach the sink: the
        // stream contract says nothing follows `run_finished`.
        writer.event(&SynthesisEvent::CorrespondenceEnumerated {
            index: 1,
            mapped_attrs: 2,
        });
        assert_eq!(writer.error(), Some(NdjsonError::WriteAfterFinish));
        // A second finish is a late write too.
        assert!(!writer.finish("solved"));
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        let last = Json::parse(lines[1]).unwrap();
        assert_eq!(
            last.get("type").and_then(Json::as_str),
            Some("run_finished")
        );
    }

    #[test]
    fn line_bus_replays_history_to_late_subscribers() {
        let bus = Arc::new(LineBus::new());
        bus.push("one".to_string());
        bus.push("two".to_string());
        // A follower that joins after lines were pushed still sees them all.
        let mut late = bus.follow();
        assert_eq!(late.next_line(), Some("one".to_string()));
        bus.push("three".to_string());
        bus.close();
        assert_eq!(late.next_line(), Some("two".to_string()));
        assert_eq!(late.next_line(), Some("three".to_string()));
        assert_eq!(late.next_line(), None);
        // Two followers see identical streams.
        let mut other = bus.follow();
        let mut collected = Vec::new();
        while let Some(line) = other.next_line() {
            collected.push(line);
        }
        assert_eq!(collected, vec!["one", "two", "three"]);
    }

    #[test]
    fn line_bus_is_a_working_ndjson_sink_even_with_split_writes() {
        let bus = Arc::new(LineBus::new());
        let writer = NdjsonWriter::new(Box::new(LineBusSink(Arc::clone(&bus))));
        writer.event(&SynthesisEvent::Solved {
            index: 3,
            iterations: 7,
        });
        assert!(writer.finish("solved"));
        // And a raw split write reassembles into one line.
        use std::io::Write as _;
        let mut sink = LineBusSink(Arc::clone(&bus));
        // (The bus rejects writes only after close; it is still open.)
        sink.write_all(b"partial ").unwrap();
        sink.write_all(b"line\n").unwrap();
        bus.close();
        let lines = bus.lines();
        assert_eq!(lines.len(), 3, "{lines:?}");
        let solved = Json::parse(&lines[0]).unwrap();
        assert_eq!(solved.get("type").and_then(Json::as_str), Some("solved"));
        assert_eq!(solved.get("seq").and_then(Json::as_i128), Some(0));
        assert_eq!(lines[2], "partial line");
    }

    #[test]
    fn line_bus_follower_timeout_reports_an_idle_open_bus() {
        let bus = Arc::new(LineBus::new());
        let mut follower = bus.follow();
        assert_eq!(
            follower.next_line_timeout(std::time::Duration::from_millis(10)),
            Err(())
        );
        bus.push("now".to_string());
        assert_eq!(
            follower.next_line_timeout(std::time::Duration::from_millis(10)),
            Ok(Some("now".to_string()))
        );
        bus.close();
        assert_eq!(
            follower.next_line_timeout(std::time::Duration::from_millis(10)),
            Ok(None)
        );
    }
}
