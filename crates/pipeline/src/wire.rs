//! The JSON-lines wire format for the pipeline's event streams.
//!
//! Every [`SynthesisEvent`] and [`PipelineEvent`] has a structured JSON
//! encoding here, and [`NdjsonWriter`] streams them — one compact JSON
//! object per line — to any `Write` sink. This is the `--events` export of
//! the `migrate` CLI and the wire format the ROADMAP's
//! migration-as-a-service daemon will speak: a client that tails the file
//! (or the socket) sees the run progress event by event and can stop
//! parsing at any line boundary.
//!
//! Line discipline:
//!
//! * every line is one well-formed JSON object with a `"type"` field;
//! * every line carries `"seq"`, a strictly increasing sequence number
//!   across *both* streams (synthesis and pipeline events interleave in
//!   delivery order);
//! * scheduling-dependent speculation notices are tagged
//!   `"channel": "speculation"` so deterministic consumers can filter
//!   them out;
//! * a terminal `{"type": "run_finished", "outcome": ...}` line closes
//!   the stream (written by [`NdjsonWriter::finish`]).
//!
//! The `tracecheck ndjson` subcommand validates exactly this discipline.

use std::io::Write;
use std::sync::Mutex;

use migrator::{CancelReason, SynthesisEvent, SynthesisObserver};
use obs::{PipelineEvent, PipelineObserver};
use sqlbridge::Json;

/// Encodes one synthesis event as a structured JSON object (without the
/// writer's `seq` / `channel` framing fields).
pub fn synthesis_event_json(event: &SynthesisEvent) -> Json {
    match event {
        SynthesisEvent::CorrespondenceEnumerated {
            index,
            mapped_attrs,
        } => Json::object()
            .with("type", Json::str("correspondence_enumerated"))
            .with("index", Json::from(*index))
            .with("mapped_attrs", Json::from(*mapped_attrs)),
        SynthesisEvent::CorrespondenceSpeculated { index } => Json::object()
            .with("type", Json::str("correspondence_speculated"))
            .with("index", Json::from(*index)),
        SynthesisEvent::CorrespondenceCancelled { index } => Json::object()
            .with("type", Json::str("correspondence_cancelled"))
            .with("index", Json::from(*index)),
        SynthesisEvent::SketchGenerated {
            index,
            holes,
            completions,
        } => Json::object()
            .with("type", Json::str("sketch_generated"))
            .with("index", Json::from(*index))
            .with("holes", Json::from(*holes))
            .with("completions", Json::str(completions.to_string())),
        SynthesisEvent::SketchGenerationFailed { index } => Json::object()
            .with("type", Json::str("sketch_generation_failed"))
            .with("index", Json::from(*index)),
        SynthesisEvent::CandidateChecked {
            index,
            iteration,
            accepted,
            sequences_tested,
        } => Json::object()
            .with("type", Json::str("candidate_checked"))
            .with("index", Json::from(*index))
            .with("iteration", Json::from(*iteration))
            .with("accepted", Json::from(*accepted))
            .with("sequences_tested", Json::from(*sequences_tested)),
        SynthesisEvent::CandidateSpeculated {
            index,
            iteration,
            adopted,
        } => Json::object()
            .with("type", Json::str("candidate_speculated"))
            .with("index", Json::from(*index))
            .with("iteration", Json::from(*iteration))
            .with("adopted", Json::from(*adopted)),
        SynthesisEvent::MfiFound {
            index,
            iteration,
            updates,
            query,
            blocked_holes,
            pruned,
            domains,
        } => {
            let domains = domains
                .iter()
                .map(|&(kind, count)| {
                    Json::object()
                        .with("domain", Json::str(kind))
                        .with("count", Json::from(count))
                })
                .collect();
            Json::object()
                .with("type", Json::str("mfi_found"))
                .with("index", Json::from(*index))
                .with("iteration", Json::from(*iteration))
                .with("updates", Json::from(*updates))
                .with("query", Json::str(query))
                .with("blocked_holes", Json::from(*blocked_holes))
                .with("pruned", Json::str(pruned.to_string()))
                .with("domains", Json::Array(domains))
        }
        SynthesisEvent::BoundExhausted {
            index,
            iterations,
            space_exhausted,
        } => Json::object()
            .with("type", Json::str("bound_exhausted"))
            .with("index", Json::from(*index))
            .with("iterations", Json::from(*iterations))
            .with("space_exhausted", Json::from(*space_exhausted)),
        SynthesisEvent::Solved { index, iterations } => Json::object()
            .with("type", Json::str("solved"))
            .with("index", Json::from(*index))
            .with("iterations", Json::from(*iterations)),
        SynthesisEvent::FrontierDrained {
            produced,
            infeasible,
        } => Json::object()
            .with("type", Json::str("frontier_drained"))
            .with("produced", Json::from(*produced))
            .with("infeasible", Json::from(*infeasible)),
        SynthesisEvent::FrontierBudgetReached { explored } => Json::object()
            .with("type", Json::str("frontier_budget_reached"))
            .with("explored", Json::from(*explored)),
        SynthesisEvent::RunInterrupted { reason } => Json::object()
            .with("type", Json::str("run_interrupted"))
            .with(
                "reason",
                Json::str(match reason {
                    CancelReason::Cancelled => "cancelled",
                    CancelReason::DeadlineExceeded => "deadline_exceeded",
                }),
            ),
    }
}

/// Encodes one pipeline event as a structured JSON object.
pub fn pipeline_event_json(event: &PipelineEvent) -> Json {
    match event {
        PipelineEvent::DdlParsed { input, tables } => Json::object()
            .with("type", Json::str("ddl_parsed"))
            .with("input", Json::str(input))
            .with("tables", Json::from(*tables)),
        PipelineEvent::Emitted {
            dialect,
            functions,
            statements,
        } => Json::object()
            .with("type", Json::str("emitted"))
            .with("dialect", Json::str(dialect))
            .with("functions", Json::from(*functions))
            .with("statements", Json::from(*statements)),
        PipelineEvent::ScriptStaged {
            backend,
            seeded_rows,
            statements,
        } => Json::object()
            .with("type", Json::str("script_staged"))
            .with("backend", Json::str(backend))
            .with("seeded_rows", Json::from(*seeded_rows))
            .with("statements", Json::from(*statements)),
        PipelineEvent::BackendStatementExecuted {
            backend,
            phase,
            statements,
        } => Json::object()
            .with("type", Json::str("backend_statement_executed"))
            .with("backend", Json::str(backend))
            .with("phase", Json::str(phase))
            .with("statements", Json::from(*statements)),
        PipelineEvent::ValidationCompared {
            backend,
            ok,
            tables_compared,
            diffs,
        } => Json::object()
            .with("type", Json::str("validation_compared"))
            .with("backend", Json::str(backend))
            .with("ok", Json::from(*ok))
            .with("tables_compared", Json::from(*tables_compared))
            .with("diffs", Json::from(*diffs)),
    }
}

struct NdjsonState {
    sink: Box<dyn Write + Send>,
    seq: u64,
    failed: bool,
}

/// Streams both event channels to a sink as JSON lines.
///
/// Implements [`SynthesisObserver`] *and* [`PipelineObserver`], so one
/// writer (behind an `Arc`) can be installed as both the synthesis
/// observer and the pipeline observer of a session. Each event becomes one
/// compact JSON line with a strictly increasing `"seq"` field; speculation
/// side-channel notices additionally carry `"channel": "speculation"`.
/// Call [`finish`](NdjsonWriter::finish) when the run ends — whichever way
/// it ends — to append the terminal `run_finished` line and flush.
///
/// Sink errors are swallowed after the first failure (an observer must not
/// panic mid-search); [`finish`](NdjsonWriter::finish) reports whether
/// every line made it out.
pub struct NdjsonWriter {
    state: Mutex<NdjsonState>,
}

impl std::fmt::Debug for NdjsonWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NdjsonWriter").finish_non_exhaustive()
    }
}

impl NdjsonWriter {
    /// A writer over any sink (a file for `--events`, a socket for the
    /// future daemon).
    pub fn new(sink: Box<dyn Write + Send>) -> NdjsonWriter {
        NdjsonWriter {
            state: Mutex::new(NdjsonState {
                sink,
                seq: 0,
                failed: false,
            }),
        }
    }

    fn write_line(&self, json: Json, speculation: bool) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.failed {
            return;
        }
        let mut json = json.with("seq", Json::from(state.seq as usize));
        if speculation {
            json = json.with("channel", Json::str("speculation"));
        }
        state.seq += 1;
        let line = json.to_compact_string();
        let sink = &mut state.sink;
        if writeln!(sink, "{line}").is_err() {
            state.failed = true;
        }
    }

    /// Writes the terminal `run_finished` line and flushes the sink.
    /// Returns `false` if any write or the flush failed.
    pub fn finish(&self, outcome: &str) -> bool {
        self.write_line(
            Json::object()
                .with("type", Json::str("run_finished"))
                .with("outcome", Json::str(outcome)),
            false,
        );
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.sink.flush().is_err() {
            state.failed = true;
        }
        !state.failed
    }
}

impl SynthesisObserver for NdjsonWriter {
    fn event(&self, event: &SynthesisEvent) {
        self.write_line(synthesis_event_json(event), false);
    }

    fn speculation(&self, event: &SynthesisEvent) {
        self.write_line(synthesis_event_json(event), true);
    }
}

impl PipelineObserver for NdjsonWriter {
    fn pipeline_event(&self, event: &PipelineEvent) {
        self.write_line(pipeline_event_json(event), false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A sink the test can read back: writes land in a shared buffer.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn events_stream_as_sequenced_json_lines_with_terminal_event() {
        let buf = SharedBuf::default();
        let writer = NdjsonWriter::new(Box::new(buf.clone()));
        writer.pipeline_event(&PipelineEvent::DdlParsed {
            input: "source".to_string(),
            tables: 2,
        });
        writer.event(&SynthesisEvent::CorrespondenceEnumerated {
            index: 0,
            mapped_attrs: 3,
        });
        writer.speculation(&SynthesisEvent::CorrespondenceSpeculated { index: 1 });
        writer.event(&SynthesisEvent::MfiFound {
            index: 0,
            iteration: 1,
            updates: 2,
            query: "getUser".to_string(),
            blocked_holes: 3,
            pruned: 12,
            domains: vec![("attr", 2), ("join", 1)],
        });
        assert!(writer.finish("no_solution"));
        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        let mut last_seq = -1i128;
        for line in &lines {
            let json = Json::parse(line).expect("every line parses");
            let seq = json.get("seq").and_then(Json::as_i128).expect("seq");
            assert!(seq > last_seq, "seq must be strictly increasing");
            last_seq = seq;
            assert!(json.get("type").and_then(Json::as_str).is_some());
        }
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(first.get("type").and_then(Json::as_str), Some("ddl_parsed"));
        let spec = Json::parse(lines[2]).unwrap();
        assert_eq!(
            spec.get("channel").and_then(Json::as_str),
            Some("speculation")
        );
        let mfi = Json::parse(lines[3]).unwrap();
        assert_eq!(mfi.get("pruned").and_then(Json::as_str), Some("12"));
        assert_eq!(
            mfi.get("domains").and_then(Json::as_array).map(|a| a.len()),
            Some(2)
        );
        let last = Json::parse(lines[4]).unwrap();
        assert_eq!(
            last.get("type").and_then(Json::as_str),
            Some("run_finished")
        );
        assert_eq!(
            last.get("outcome").and_then(Json::as_str),
            Some("no_solution")
        );
    }

    #[test]
    fn a_failing_sink_reports_failure_without_panicking() {
        struct FailingSink;
        impl Write for FailingSink {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("sink closed"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Err(std::io::Error::other("sink closed"))
            }
        }
        let writer = NdjsonWriter::new(Box::new(FailingSink));
        writer.event(&SynthesisEvent::Solved {
            index: 0,
            iterations: 1,
        });
        assert!(!writer.finish("solved"));
    }
}
