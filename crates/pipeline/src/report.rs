//! Machine-readable reports: the typed stage outputs rendered as one JSON
//! document (the `migrate --json` payload).

use migrator::{PhaseBreakdown, SynthesisOutcome, SynthesisStats, ValueCorrespondence};
use sqlbridge::Json;
use sqlexec::ValidationOutcome;

use crate::{Emitted, Synthesized};

/// Renders the per-phase breakdown as a JSON object.
///
/// The counters are exact; the `*_secs` fields are wall-clock and must
/// never be compared across runs. The experiments harness only checks the
/// deterministic counters (`sat_blocking_clauses`, `plans_compiled`,
/// `solver_reuses`, `learned_clauses_kept`, `prefix_cache_hits`,
/// `undo_frames`, `undo_ops_rolled_back`); `snapshots_taken` and
/// `snapshot_bytes_copied` are scheduling-dependent diagnostics.
pub fn phases_json(phases: &PhaseBreakdown) -> Json {
    Json::object()
        .with(
            "vc_enumeration_secs",
            phases.vc_enumeration_time.as_secs_f64().into(),
        )
        .with(
            "sketch_generation_secs",
            phases.sketch_generation_time.as_secs_f64().into(),
        )
        .with(
            "completion_secs",
            phases.completion_time.as_secs_f64().into(),
        )
        .with(
            "bounded_testing_secs",
            phases.bounded_testing_time.as_secs_f64().into(),
        )
        .with(
            "plan_compile_secs",
            phases.plan_compile_time.as_secs_f64().into(),
        )
        .with("snapshot_secs", phases.snapshot_time.as_secs_f64().into())
        .with("oracle_secs", phases.oracle_time.as_secs_f64().into())
        .with("sat_blocking_clauses", phases.sat_blocking_clauses.into())
        .with("plans_compiled", (phases.plans_compiled as usize).into())
        .with("solver_reuses", (phases.solver_reuses as usize).into())
        .with(
            "learned_clauses_kept",
            (phases.learned_clauses_kept as usize).into(),
        )
        .with(
            "prefix_cache_hits",
            (phases.prefix_cache_hits as usize).into(),
        )
        .with("undo_frames", (phases.undo_frames as usize).into())
        .with(
            "undo_ops_rolled_back",
            (phases.undo_ops_rolled_back as usize).into(),
        )
        .with("snapshots_taken", (phases.snapshots_taken as usize).into())
        .with(
            "snapshot_bytes_copied",
            (phases.snapshot_bytes_copied as usize).into(),
        )
}

/// Renders synthesis statistics as a JSON object.
pub fn stats_json(stats: &SynthesisStats, outcome: SynthesisOutcome) -> Json {
    Json::object()
        .with("outcome", Json::str(outcome.as_str()))
        .with("succeeded", Json::Bool(outcome == SynthesisOutcome::Solved))
        .with("value_correspondences", stats.value_correspondences.into())
        .with("sketches_generated", stats.sketches_generated.into())
        .with("iterations", stats.iterations.into())
        .with(
            "invalid_instantiations",
            stats.invalid_instantiations.into(),
        )
        .with("largest_search_space", stats.largest_search_space.into())
        .with("sequences_tested", stats.sequences_tested.into())
        .with("truncated_checks", stats.truncated_checks.into())
        .with("oracle_hits", stats.oracle_hits.into())
        .with(
            "synthesis_time_secs",
            stats.synthesis_time.as_secs_f64().into(),
        )
        .with(
            "verification_time_secs",
            stats.verification_time.as_secs_f64().into(),
        )
        .with("total_time_secs", stats.total_time().as_secs_f64().into())
        .with("phases", phases_json(&stats.phases))
}

/// Renders a value correspondence as an object: source attribute →
/// array of target attributes.
pub fn correspondence_json(phi: &ValueCorrespondence) -> Json {
    let mut object = Json::object();
    for (source, images) in phi.iter() {
        if images.is_empty() {
            continue;
        }
        let targets: Vec<Json> = images.iter().map(|t| Json::str(t.to_string())).collect();
        object = object.with(source.to_string(), Json::Array(targets));
    }
    object
}

/// Renders a validation outcome as a JSON object.
pub fn validation_json(outcome: &ValidationOutcome) -> Json {
    let diffs = outcome
        .diffs
        .iter()
        .map(|d| Json::str(d.to_string()))
        .collect();
    let details = outcome.details.iter().map(Json::str).collect();
    Json::object()
        .with("validated", Json::Bool(outcome.ok))
        .with("backend", Json::str(&outcome.backend))
        .with("dialect", Json::str(&outcome.dialect))
        .with("seeded_rows", outcome.seeded_rows.into())
        .with("migrated_rows", outcome.migrated_rows.into())
        .with("diffs", Json::Array(diffs))
        .with("details", Json::Array(details))
}

fn string_array(items: &[String]) -> Json {
    Json::Array(items.iter().map(Json::str).collect())
}

/// Renders the whole refactoring result — correspondence, program, SQL,
/// migration script, optional validation, statistics and the outcome kind —
/// as one JSON document built from the typed stage outputs.
pub fn result_json(
    synthesized: &Synthesized,
    emitted: &Emitted,
    validation: Option<&ValidationOutcome>,
) -> Json {
    let functions: Vec<Json> = emitted
        .functions
        .iter()
        .map(|function| {
            let params: Vec<Json> = function
                .params
                .iter()
                .map(|(name, ty)| {
                    Json::object()
                        .with("name", Json::str(name))
                        .with("type", Json::str(ty.to_string()))
                })
                .collect();
            Json::object()
                .with("name", Json::str(&function.name))
                .with(
                    "kind",
                    Json::str(if function.is_query { "query" } else { "update" }),
                )
                .with("params", Json::Array(params))
                .with("fresh_ids", string_array(&function.fresh_ids))
                .with("statements", string_array(&function.statements))
        })
        .collect();
    Json::object()
        .with("outcome", Json::str(synthesized.outcome.as_str()))
        .with("dialect", Json::str(emitted.dialect.name()))
        .with(
            "correspondence",
            correspondence_json(&synthesized.correspondence),
        )
        .with("program", Json::str(synthesized.program_text()))
        .with(
            "sql",
            Json::object()
                .with("script", Json::str(&emitted.program_sql))
                .with("functions", Json::Array(functions)),
        )
        .with("target_ddl", Json::str(&emitted.target_ddl))
        .with(
            "migration",
            Json::object()
                .with("notes", string_array(&emitted.script.notes))
                .with("preamble", string_array(&emitted.script.preamble))
                .with("statements", string_array(&emitted.script.statements))
                .with("cleanup", string_array(&emitted.script.cleanup))
                .with("script", Json::str(&emitted.migration_sql)),
        )
        .with(
            "validation",
            match validation {
                Some(outcome) => validation_json(outcome),
                None => Json::Null,
            },
        )
        .with("stats", stats_json(&synthesized.stats, synthesized.outcome))
}

/// The JSON document for a run that produced no program: the outcome kind,
/// the (possibly partial) statistics and — when a
/// [`SearchLedger`](crate::SearchLedger) was attached — the forensics
/// summary explaining *why* the search came up empty (rejection taxonomy,
/// MFI-kill / death-depth / hole-domain histograms).
pub fn failure_json(
    outcome: SynthesisOutcome,
    stats: &SynthesisStats,
    forensics: Option<&crate::SearchLedger>,
) -> Json {
    Json::object()
        .with("outcome", Json::str(outcome.as_str()))
        .with("stats", stats_json(stats, outcome))
        .with(
            "forensics",
            match forensics {
                Some(ledger) => ledger.to_json(),
                None => Json::Null,
            },
        )
}

/// The `migrate explain` document: the outcome kind, statistics and the
/// forensics summary. Same shape as [`failure_json`] with the ledger
/// always present — `explain` reports solved runs too.
pub fn explain_json(
    outcome: SynthesisOutcome,
    stats: &SynthesisStats,
    ledger: &crate::SearchLedger,
) -> Json {
    failure_json(outcome, stats, Some(ledger))
}
