//! # pipeline — the first-class `Refactoring` facade
//!
//! The paper's Figure-1 pipeline (value correspondence → sketch →
//! completion → bounded verification) plus the SQL boundary around it used
//! to be wired by hand in every client: parse the DDL, run the synthesizer,
//! emit SQL, plan the migration, validate it. This crate owns that wiring
//! once, as a builder-style session with **typed stage outputs**:
//!
//! ```text
//! Refactoring ──synthesize()──► Synthesized ──emit()──► Emitted ──validate()──► Validated
//!  (inputs,                      (program,               (SQL, DDL,              (executed
//!   config,                       correspondence,         migration              outcome vs
//!   observer,                     stats, outcome)         script)                prediction)
//!   deadline)
//! ```
//!
//! Each stage's output carries everything the next stage needs, so clients
//! can stop wherever they like: the `migrate` CLI runs all three stages,
//! the experiments harness runs `synthesize` + `validate`, a library user
//! embedding the engine may only ever call `synthesize`.
//!
//! Two capabilities thread through the whole pipeline:
//!
//! * **Progress events** — [`Refactoring::observer`] installs a
//!   [`SynthesisObserver`] that receives typed [`SynthesisEvent`]s in
//!   deterministic enumeration order, even under parallel CEGIS (see
//!   [`migrator::observe`] for the contract).
//! * **Cancellation and deadlines** — [`Refactoring::deadline`] bounds the
//!   run by wall-clock time; [`Refactoring::cancel_token`] installs a
//!   [`CancelToken`] that can be fired from another thread. An interrupted
//!   run fails with [`RefactorError::Unsolved`] whose outcome is
//!   [`SynthesisOutcome::Timeout`] or [`SynthesisOutcome::Cancelled`] —
//!   never conflated with [`SynthesisOutcome::NoSolution`].
//!
//! Failures at every layer surface as one structured, `source()`-chained
//! [`RefactorError`] (span-carrying for SQL and program parse errors).
//!
//! ## Example
//!
//! ```
//! use pipeline::Refactoring;
//!
//! let result = Refactoring::from_ddl(
//!     "CREATE TABLE Users (uid INTEGER PRIMARY KEY, nick TEXT);",
//!     "CREATE TABLE Users (uid INTEGER PRIMARY KEY, handle TEXT);",
//! )
//! .unwrap()
//! .program_text(
//!     r#"
//!     update addUser(uid: int, nick: string)
//!         INSERT INTO Users VALUES (uid: uid, nick: nick);
//!     query getUser(uid: int)
//!         SELECT nick FROM Users WHERE uid = uid;
//!     "#,
//! )
//! .unwrap();
//!
//! let synthesized = result.synthesize().expect("the rename synthesizes");
//! let emitted = synthesized.emit(Box::new(sqlbridge::Sqlite));
//! assert!(emitted.program_sql.contains("SELECT Users.handle FROM Users"));
//!
//! let validated = emitted
//!     .validate(&mut sqlexec::MemoryBackend::new(), 3)
//!     .expect("the memory backend runs the script");
//! assert!(validated.outcome.ok);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use dbir::parser::parse_program;
use dbir::pretty::program_to_string;
use dbir::{Program, Schema};
use migrator::{
    SynthesisConfig, SynthesisObserver, SynthesisOutcome, SynthesisStats, Synthesizer,
    ValueCorrespondence,
};
use sqlbridge::migration::{migration_script, render_migration_script, MigrationScript};
use sqlbridge::{parse_ddl, render_sql_program, schema_to_ddl, Dialect, SqlFunction};
use sqlexec::{Backend, ValidationOutcome};

pub mod error;
pub mod report;

pub use error::{InputKind, RefactorError};
pub use migrator::{CancelReason, CancelToken, SynthesisEvent};
// Re-exported so facade clients need no direct dependency on the layer
// crates for the common path.
pub use sqlbridge::{dialect_by_name, Json};

/// Builds the backend registered under `name` (`memory`, or `sqlite3` when
/// a `sqlite3` binary is installed).
///
/// # Errors
///
/// [`RefactorError::InvalidConfig`] for unknown names,
/// [`RefactorError::Backend`] when the sqlite3 backend cannot start.
pub fn backend_by_name(name: &str) -> Result<Box<dyn Backend>, RefactorError> {
    match name.to_ascii_lowercase().as_str() {
        "memory" => Ok(Box::new(sqlexec::MemoryBackend::new())),
        "sqlite3" | "sqlite" => sqlexec::Sqlite3Backend::create()
            .map(|backend| Box::new(backend) as Box<dyn Backend>)
            .map_err(|source| RefactorError::Backend { source }),
        other => Err(RefactorError::InvalidConfig {
            message: format!("unknown backend `{other}` (expected `memory` or `sqlite3`)"),
        }),
    }
}

/// A refactoring session: the two schemas, the source program, and the
/// cross-cutting run controls, assembled builder-style.
///
/// See the crate documentation for the stage flow.
#[derive(Clone)]
pub struct Refactoring {
    source_schema: Schema,
    target_schema: Schema,
    program: Option<Program>,
    config: SynthesisConfig,
    observer: Option<Arc<dyn SynthesisObserver>>,
    cancel: CancelToken,
    budget: Option<Duration>,
}

impl std::fmt::Debug for Refactoring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Refactoring")
            .field("source_schema", &self.source_schema)
            .field("target_schema", &self.target_schema)
            .field("program", &self.program.is_some())
            .field("config", &self.config)
            .field("observer", &self.observer.is_some())
            .field("cancel", &self.cancel)
            .field("budget", &self.budget)
            .finish()
    }
}

impl Refactoring {
    /// A session over already-parsed schemas.
    pub fn new(source_schema: Schema, target_schema: Schema) -> Refactoring {
        Refactoring {
            source_schema,
            target_schema,
            program: None,
            config: SynthesisConfig::standard(),
            observer: None,
            cancel: CancelToken::new(),
            budget: None,
        }
    }

    /// A session over SQL DDL text.
    ///
    /// # Errors
    ///
    /// [`RefactorError::Ddl`] with the offending span when either schema
    /// fails to parse.
    pub fn from_ddl(source_sql: &str, target_sql: &str) -> Result<Refactoring, RefactorError> {
        let parse = |sql: &str, input: InputKind| {
            parse_ddl(sql).map_err(|source| RefactorError::Ddl {
                input,
                origin: "<inline>".to_string(),
                source,
            })
        };
        Ok(Refactoring::new(
            parse(source_sql, InputKind::SourceSchema)?,
            parse(target_sql, InputKind::TargetSchema)?,
        ))
    }

    /// A session over SQL DDL files.
    ///
    /// # Errors
    ///
    /// [`RefactorError::Read`] when a file cannot be read,
    /// [`RefactorError::Ddl`] (pointing at the file) when it fails to
    /// parse.
    pub fn from_ddl_files(
        source_path: &Path,
        target_path: &Path,
    ) -> Result<Refactoring, RefactorError> {
        let load = |path: &Path, input: InputKind| -> Result<Schema, RefactorError> {
            let sql = std::fs::read_to_string(path).map_err(|source| RefactorError::Read {
                path: path.to_path_buf(),
                source,
            })?;
            parse_ddl(&sql).map_err(|source| RefactorError::Ddl {
                input,
                origin: path.display().to_string(),
                source,
            })
        };
        Ok(Refactoring::new(
            load(source_path, InputKind::SourceSchema)?,
            load(target_path, InputKind::TargetSchema)?,
        ))
    }

    /// The session's source schema.
    pub fn source_schema(&self) -> &Schema {
        &self.source_schema
    }

    /// The session's target schema.
    pub fn target_schema(&self) -> &Schema {
        &self.target_schema
    }

    /// Sets the (already parsed) source program.
    pub fn program(mut self, program: Program) -> Refactoring {
        self.program = Some(program);
        self
    }

    /// Parses and sets the source program from `dbir` concrete syntax,
    /// resolved against the source schema.
    ///
    /// # Errors
    ///
    /// [`RefactorError::Program`] when the text fails to parse or validate.
    pub fn program_text(self, text: &str) -> Result<Refactoring, RefactorError> {
        let program =
            parse_program(text, &self.source_schema).map_err(|source| RefactorError::Program {
                origin: "<inline>".to_string(),
                source,
            })?;
        Ok(self.program(program))
    }

    /// Reads, parses and sets the source program from a file.
    ///
    /// # Errors
    ///
    /// [`RefactorError::Read`] or [`RefactorError::Program`], pointing at
    /// the file.
    pub fn program_file(self, path: &Path) -> Result<Refactoring, RefactorError> {
        let text = std::fs::read_to_string(path).map_err(|source| RefactorError::Read {
            path: path.to_path_buf(),
            source,
        })?;
        let program =
            parse_program(&text, &self.source_schema).map_err(|source| RefactorError::Program {
                origin: path.display().to_string(),
                source,
            })?;
        Ok(self.program(program))
    }

    /// Sets the synthesis configuration (defaults to
    /// [`SynthesisConfig::standard`]).
    pub fn config(mut self, config: SynthesisConfig) -> Refactoring {
        self.config = config;
        self
    }

    /// Installs a progress observer (see [`migrator::observe`] for the
    /// deterministic delivery contract).
    pub fn observer(mut self, observer: Arc<dyn SynthesisObserver>) -> Refactoring {
        self.observer = Some(observer);
        self
    }

    /// Installs a cancellation token. Clone the token before passing it in
    /// to keep a handle for cancelling the run from another thread.
    pub fn cancel_token(mut self, token: CancelToken) -> Refactoring {
        self.cancel = token;
        self
    }

    /// Bounds each run by wall-clock time: past `budget`, synthesis stops
    /// at its next cancellation point and [`Refactoring::synthesize`] fails
    /// with outcome [`SynthesisOutcome::Timeout`].
    ///
    /// The clock starts when [`Refactoring::synthesize`] is called — not
    /// when the builder is configured — and every run gets a fresh budget,
    /// so a session (or a clone of one) can be retried after a timeout.
    /// A budget composes with [`Refactoring::cancel_token`]: each run
    /// polls a per-run deadline token *linked* to the installed one, so
    /// explicit cancellation still fires under a budget. To share one
    /// *absolute* deadline across runs, install
    /// [`CancelToken::with_deadline`] explicitly instead.
    pub fn deadline(mut self, budget: Duration) -> Refactoring {
        self.budget = Some(budget);
        self
    }

    /// Runs the synthesis stage: value-correspondence enumeration, sketch
    /// generation, MFI-guided completion and final bounded verification.
    ///
    /// # Errors
    ///
    /// [`RefactorError::InvalidConfig`] when no program was set;
    /// [`RefactorError::Unsolved`] (carrying the outcome kind and partial
    /// statistics) when the run ends without a program.
    pub fn synthesize(&self) -> Result<Synthesized, RefactorError> {
        let Some(program) = &self.program else {
            return Err(RefactorError::InvalidConfig {
                message: "no source program was set (use program / program_text / program_file)"
                    .to_string(),
            });
        };
        let mut synthesizer =
            Synthesizer::new(self.config.clone()).with_cancel(self.cancel.clone());
        if let Some(budget) = self.budget {
            synthesizer = synthesizer.with_deadline(budget);
        }
        if let Some(observer) = &self.observer {
            synthesizer = synthesizer.with_observer(observer.clone());
        }
        let result = synthesizer.synthesize(program, &self.source_schema, &self.target_schema);
        match (result.program, result.correspondence) {
            (Some(migrated), Some(correspondence)) => Ok(Synthesized {
                source_schema: self.source_schema.clone(),
                target_schema: self.target_schema.clone(),
                program: migrated,
                correspondence,
                stats: result.stats,
                outcome: result.outcome,
            }),
            _ => Err(RefactorError::Unsolved {
                outcome: result.outcome,
                stats: Box::new(result.stats),
            }),
        }
    }
}

/// Output of the synthesis stage: the migrated program, the value
/// correspondence it was derived from, and the run's statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Synthesized {
    /// The source schema the session started from.
    pub source_schema: Schema,
    /// The target schema the program was migrated to.
    pub target_schema: Schema,
    /// The synthesized program over the target schema.
    pub program: Program,
    /// The winning value correspondence (drives the data migration).
    pub correspondence: ValueCorrespondence,
    /// Statistics of the run.
    pub stats: SynthesisStats,
    /// Always [`SynthesisOutcome::Solved`] (unsolved runs fail the stage);
    /// carried so reports need only one source of truth.
    pub outcome: SynthesisOutcome,
}

impl Synthesized {
    /// The migrated program in `dbir` concrete syntax.
    pub fn program_text(&self) -> String {
        program_to_string(&self.program)
    }

    /// Runs the emission stage: renders the program as parameterized SQL
    /// and plans + renders the executable data-migration script, all in
    /// `dialect`.
    pub fn emit(&self, dialect: Box<dyn Dialect>) -> Emitted {
        let functions = sqlbridge::program_to_sql(&self.program, dialect.as_ref());
        let program_sql = render_sql_program(&self.program, dialect.as_ref());
        let target_ddl = schema_to_ddl(&self.target_schema, dialect.as_ref());
        let script = migration_script(
            &self.source_schema,
            &self.target_schema,
            &self.correspondence,
            dialect.as_ref(),
        );
        let migration_sql = render_migration_script(&script, dialect.as_ref());
        Emitted {
            source_schema: self.source_schema.clone(),
            target_schema: self.target_schema.clone(),
            correspondence: self.correspondence.clone(),
            dialect,
            functions,
            program_sql,
            target_ddl,
            script,
            migration_sql,
        }
    }
}

/// Output of the emission stage: every SQL artifact of the refactoring,
/// rendered in one dialect.
pub struct Emitted {
    /// The source schema (kept for the validation stage).
    pub source_schema: Schema,
    /// The target schema.
    pub target_schema: Schema,
    /// The winning value correspondence.
    pub correspondence: ValueCorrespondence,
    /// The dialect everything below is rendered in.
    pub dialect: Box<dyn Dialect>,
    /// Per-function parameterized SQL (placeholder order, fresh-id
    /// parameters).
    pub functions: Vec<SqlFunction>,
    /// The whole program as one annotated SQL script.
    pub program_sql: String,
    /// The target schema as `CREATE TABLE` DDL.
    pub target_ddl: String,
    /// The executable data-migration plan (staging renames, data moves,
    /// cleanup).
    pub script: MigrationScript,
    /// The migration script rendered as one executable SQL text.
    pub migration_sql: String,
}

impl std::fmt::Debug for Emitted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Emitted")
            .field("dialect", &self.dialect.name())
            .field("functions", &self.functions.len())
            .field("program_sql", &self.program_sql)
            .field("migration_sql", &self.migration_sql)
            .finish()
    }
}

impl Emitted {
    /// Runs the validation stage: seeds a deterministic source instance,
    /// executes the emitted DDL + seed inserts + migration script on
    /// `backend`, and compares the resulting target instance with the
    /// dbir-level prediction (surrogate keys up to a bijection).
    ///
    /// The script is validated in this emission's dialect — except on a
    /// real `sqlite3` backend, which can only execute the SQLite rendering
    /// (the in-memory engine accepts every provided dialect).
    ///
    /// A semantic mismatch is **not** an error: it comes back as a
    /// [`Validated`] whose outcome has `ok == false` (use
    /// [`Validated::into_result`] to turn it into one).
    ///
    /// # Errors
    ///
    /// [`RefactorError::Backend`] when the backend cannot run the script at
    /// all.
    pub fn validate(
        &self,
        backend: &mut dyn Backend,
        rows_per_table: usize,
    ) -> Result<Validated, RefactorError> {
        let sqlite = sqlbridge::Sqlite;
        let dialect: &dyn Dialect = if backend.name() == "sqlite3" {
            &sqlite
        } else {
            self.dialect.as_ref()
        };
        let outcome = sqlexec::validate_migration_dialect(
            &self.source_schema,
            &self.target_schema,
            &self.correspondence,
            backend,
            rows_per_table,
            dialect,
        )
        .map_err(|source| RefactorError::Backend { source })?;
        Ok(Validated { outcome })
    }
}

/// Output of the validation stage.
#[derive(Debug, Clone)]
pub struct Validated {
    /// The executed-vs-predicted comparison, with per-table diffs on
    /// mismatch.
    pub outcome: ValidationOutcome,
}

impl Validated {
    /// `true` when the executed migration matched the prediction.
    pub fn ok(&self) -> bool {
        self.outcome.ok
    }

    /// Converts a mismatch into [`RefactorError::ValidationFailed`].
    ///
    /// # Errors
    ///
    /// [`RefactorError::ValidationFailed`] when the outcome is not `ok`.
    pub fn into_result(self) -> Result<Validated, RefactorError> {
        if self.outcome.ok {
            Ok(self)
        } else {
            Err(RefactorError::ValidationFailed {
                outcome: Box::new(self.outcome),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_program_is_a_config_error() {
        let source = Schema::parse("T(a: int)").unwrap();
        let target = Schema::parse("T(a: int)").unwrap();
        let err = Refactoring::new(source, target).synthesize().unwrap_err();
        assert!(err.is_usage(), "{err}");
        assert!(err.to_string().contains("program"), "{err}");
    }

    #[test]
    fn ddl_errors_carry_spans_and_input_kind() {
        let err = Refactoring::from_ddl(
            "CREATE TABLE T (a INTEGER);",
            "CREATE TABLE T (\n  a GEOGRAPHY\n);",
        )
        .unwrap_err();
        let rendered = err.to_string();
        assert!(rendered.contains("target schema"), "{rendered}");
        assert!(rendered.contains("--> 2:5"), "{rendered}");
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn unknown_backend_is_a_usage_error() {
        let err = backend_by_name("oracle").unwrap_err();
        assert!(err.is_usage());
        assert!(err.to_string().contains("oracle"));
    }
}
