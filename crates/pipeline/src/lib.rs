//! # pipeline — the first-class `Refactoring` facade
//!
//! The paper's Figure-1 pipeline (value correspondence → sketch →
//! completion → bounded verification) plus the SQL boundary around it used
//! to be wired by hand in every client: parse the DDL, run the synthesizer,
//! emit SQL, plan the migration, validate it. This crate owns that wiring
//! once, as a builder-style session with **typed stage outputs**:
//!
//! ```text
//! Refactoring ──synthesize()──► Synthesized ──emit()──► Emitted ──validate()──► Validated
//!  (inputs,                      (program,               (SQL, DDL,              (executed
//!   config,                       correspondence,         migration              outcome vs
//!   observer,                     stats, outcome)         script)                prediction)
//!   deadline)
//! ```
//!
//! Each stage's output carries everything the next stage needs, so clients
//! can stop wherever they like: the `migrate` CLI runs all three stages,
//! the experiments harness runs `synthesize` + `validate`, a library user
//! embedding the engine may only ever call `synthesize`.
//!
//! Two capabilities thread through the whole pipeline:
//!
//! * **Progress events** — [`Refactoring::observer`] installs a
//!   [`SynthesisObserver`] that receives typed [`SynthesisEvent`]s in
//!   deterministic enumeration order, even under parallel CEGIS (see
//!   [`migrator::observe`] for the contract).
//! * **Cancellation and deadlines** — [`Refactoring::deadline`] bounds the
//!   run by wall-clock time; [`Refactoring::cancel_token`] installs a
//!   [`CancelToken`] that can be fired from another thread. An interrupted
//!   run fails with [`RefactorError::Unsolved`] whose outcome is
//!   [`SynthesisOutcome::Timeout`] or [`SynthesisOutcome::Cancelled`] —
//!   never conflated with [`SynthesisOutcome::NoSolution`].
//!
//! Failures at every layer surface as one structured, `source()`-chained
//! [`RefactorError`] (span-carrying for SQL and program parse errors).
//!
//! ## Example
//!
//! ```
//! use pipeline::Refactoring;
//!
//! let result = Refactoring::from_ddl(
//!     "CREATE TABLE Users (uid INTEGER PRIMARY KEY, nick TEXT);",
//!     "CREATE TABLE Users (uid INTEGER PRIMARY KEY, handle TEXT);",
//! )
//! .unwrap()
//! .program_text(
//!     r#"
//!     update addUser(uid: int, nick: string)
//!         INSERT INTO Users VALUES (uid: uid, nick: nick);
//!     query getUser(uid: int)
//!         SELECT nick FROM Users WHERE uid = uid;
//!     "#,
//! )
//! .unwrap();
//!
//! let synthesized = result.synthesize().expect("the rename synthesizes");
//! let emitted = synthesized.emit(Box::new(sqlbridge::Sqlite));
//! assert!(emitted.program_sql.contains("SELECT Users.handle FROM Users"));
//!
//! let validated = emitted
//!     .validate(&mut sqlexec::MemoryBackend::new(), 3)
//!     .expect("the memory backend runs the script");
//! assert!(validated.outcome.ok);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use dbir::parser::parse_program;
use dbir::pretty::program_to_string;
use dbir::{Program, Schema};
use migrator::{
    SynthesisConfig, SynthesisObserver, SynthesisOutcome, SynthesisStats, Synthesizer,
    ValueCorrespondence,
};
use sqlbridge::migration::{migration_script, render_migration_script, MigrationScript};
use sqlbridge::{parse_ddl, render_sql_program, schema_to_ddl, Dialect, SqlFunction};
use sqlexec::{Backend, ValidationOutcome};

pub mod error;
pub mod job;
pub mod report;
pub mod wire;

pub use error::{InputKind, RefactorError};
pub use job::{run_job, JobReport, JobSpec};
pub use migrator::{CancelReason, CancelToken, SynthesisEvent};
// Re-exported so facade clients need no direct dependency on the layer
// crates for the common path.
pub use obs::{Metrics, PipelineEvent, PipelineObserver, SearchLedger, Trace};
// The thread budget governs the parallel CEGIS fan-out; clients that let
// users pick a budget (the CLI's `--threads`) need the setter without a
// direct parpool dependency.
pub use parpool::set_thread_limit;
pub use sqlbridge::{dialect_by_name, Json};
pub use wire::{LineBus, LineBusSink, LineFollower, NdjsonError, NdjsonWriter};

/// The observability hooks threaded through the stage outputs: an optional
/// span [`Trace`], an optional [`Metrics`] registry and an optional
/// [`PipelineObserver`] for stage events.
///
/// The context carries *instruments*, not data: two stage outputs that
/// differ only in their attached instruments describe the same refactoring,
/// so `ObsContext` compares equal to every other `ObsContext` and stays
/// transparent to the stage outputs' `PartialEq`.
#[derive(Clone, Default)]
pub struct ObsContext {
    trace: Option<Arc<Trace>>,
    metrics: Option<Arc<Metrics>>,
    observer: Option<Arc<dyn PipelineObserver>>,
    forensics: Option<Arc<SearchLedger>>,
}

impl std::fmt::Debug for ObsContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsContext")
            .field("trace", &self.trace.is_some())
            .field("metrics", &self.metrics.is_some())
            .field("observer", &self.observer.is_some())
            .field("forensics", &self.forensics.is_some())
            .finish()
    }
}

impl PartialEq for ObsContext {
    fn eq(&self, _other: &ObsContext) -> bool {
        true // instruments, not data — see the type documentation
    }
}

impl ObsContext {
    fn event(&self, event: PipelineEvent) {
        if let Some(observer) = &self.observer {
            observer.pipeline_event(&event);
        }
    }

    fn counter(&self, name: &str, value: u64) {
        if let Some(metrics) = &self.metrics {
            metrics.counter(name, value);
        }
    }

    fn time(&self, name: &str, duration: Duration) {
        if let Some(metrics) = &self.metrics {
            metrics.record_time(name, duration);
        }
    }
}

/// Feeds a [`SearchLedger`] from the synthesis event main stream while
/// forwarding both channels to an optional inner observer.
///
/// Lives in the pipeline layer on purpose: the core synthesizer emits
/// events without knowing about `obs`, and `obs` aggregates without
/// knowing about synthesis — this adapter is the one place that sees both
/// vocabularies. Determinism is inherited from the main stream's
/// enumeration-order delivery contract.
struct ForensicsRecorder {
    ledger: Arc<SearchLedger>,
    inner: Option<Arc<dyn SynthesisObserver>>,
}

impl SynthesisObserver for ForensicsRecorder {
    fn event(&self, event: &SynthesisEvent) {
        match event {
            SynthesisEvent::CorrespondenceEnumerated { .. } => {
                self.ledger.correspondence_enumerated();
            }
            SynthesisEvent::SketchGenerated {
                holes, completions, ..
            } => self.ledger.sketch_generated(*holes, *completions),
            SynthesisEvent::SketchGenerationFailed { .. } => {
                self.ledger.sketch_generation_failed();
            }
            SynthesisEvent::CandidateChecked { accepted, .. } => {
                self.ledger.candidate_checked(*accepted);
            }
            SynthesisEvent::MfiFound {
                updates,
                query,
                pruned,
                domains,
                ..
            } => self.ledger.mfi(*updates, query, *pruned, domains),
            SynthesisEvent::BoundExhausted {
                space_exhausted, ..
            } => self.ledger.bound_exhausted(*space_exhausted),
            SynthesisEvent::Solved { index, iterations } => {
                self.ledger.solved(*index, *iterations);
            }
            SynthesisEvent::FrontierDrained {
                produced,
                infeasible,
            } => self.ledger.frontier_drained(*produced, *infeasible),
            SynthesisEvent::FrontierBudgetReached { explored } => {
                self.ledger.frontier_budget_reached(*explored);
            }
            SynthesisEvent::RunInterrupted { reason } => self.ledger.interrupted(match reason {
                CancelReason::Cancelled => "cancelled",
                CancelReason::DeadlineExceeded => "deadline exceeded",
            }),
            // Adoption probes are per-candidate detail the histograms
            // already cover; the speculative dispatch notices below only
            // ever arrive on the side channel.
            SynthesisEvent::CandidateSpeculated { .. }
            | SynthesisEvent::CorrespondenceSpeculated { .. }
            | SynthesisEvent::CorrespondenceCancelled { .. } => {}
        }
        if let Some(inner) = &self.inner {
            inner.event(event);
        }
    }

    fn speculation(&self, event: &SynthesisEvent) {
        // Scheduling-dependent notices never touch the ledger — they would
        // break its byte-identical-at-any-thread-count contract.
        if let Some(inner) = &self.inner {
            inner.speculation(event);
        }
    }
}

/// Builds the backend registered under `name` (`memory`, or `sqlite3` when
/// a `sqlite3` binary is installed).
///
/// # Errors
///
/// [`RefactorError::InvalidConfig`] for unknown names,
/// [`RefactorError::Backend`] when the sqlite3 backend cannot start.
pub fn backend_by_name(name: &str) -> Result<Box<dyn Backend>, RefactorError> {
    match name.to_ascii_lowercase().as_str() {
        "memory" => Ok(Box::new(sqlexec::MemoryBackend::new())),
        "sqlite3" | "sqlite" => sqlexec::Sqlite3Backend::create()
            .map(|backend| Box::new(backend) as Box<dyn Backend>)
            .map_err(|source| RefactorError::Backend { source }),
        other => Err(RefactorError::InvalidConfig {
            message: format!("unknown backend `{other}` (expected `memory` or `sqlite3`)"),
        }),
    }
}

/// A refactoring session: the two schemas, the source program, and the
/// cross-cutting run controls, assembled builder-style.
///
/// See the crate documentation for the stage flow.
#[derive(Clone)]
pub struct Refactoring {
    source_schema: Schema,
    target_schema: Schema,
    program: Option<Program>,
    config: SynthesisConfig,
    observer: Option<Arc<dyn SynthesisObserver>>,
    cancel: CancelToken,
    budget: Option<Duration>,
    obs: ObsContext,
}

impl std::fmt::Debug for Refactoring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Refactoring")
            .field("source_schema", &self.source_schema)
            .field("target_schema", &self.target_schema)
            .field("program", &self.program.is_some())
            .field("config", &self.config)
            .field("observer", &self.observer.is_some())
            .field("cancel", &self.cancel)
            .field("budget", &self.budget)
            .field("obs", &self.obs)
            .finish()
    }
}

impl Refactoring {
    /// A session over already-parsed schemas.
    pub fn new(source_schema: Schema, target_schema: Schema) -> Refactoring {
        Refactoring {
            source_schema,
            target_schema,
            program: None,
            config: SynthesisConfig::standard(),
            observer: None,
            cancel: CancelToken::new(),
            budget: None,
            obs: ObsContext::default(),
        }
    }

    /// A session over SQL DDL text.
    ///
    /// # Errors
    ///
    /// [`RefactorError::Ddl`] with the offending span when either schema
    /// fails to parse.
    pub fn from_ddl(source_sql: &str, target_sql: &str) -> Result<Refactoring, RefactorError> {
        let parse = |sql: &str, input: InputKind| {
            parse_ddl(sql).map_err(|source| RefactorError::Ddl {
                input,
                origin: "<inline>".to_string(),
                source,
            })
        };
        Ok(Refactoring::new(
            parse(source_sql, InputKind::SourceSchema)?,
            parse(target_sql, InputKind::TargetSchema)?,
        ))
    }

    /// A session over SQL DDL files.
    ///
    /// # Errors
    ///
    /// [`RefactorError::Read`] when a file cannot be read,
    /// [`RefactorError::Ddl`] (pointing at the file) when it fails to
    /// parse.
    pub fn from_ddl_files(
        source_path: &Path,
        target_path: &Path,
    ) -> Result<Refactoring, RefactorError> {
        let load = |path: &Path, input: InputKind| -> Result<Schema, RefactorError> {
            let sql = std::fs::read_to_string(path).map_err(|source| RefactorError::Read {
                path: path.to_path_buf(),
                source,
            })?;
            parse_ddl(&sql).map_err(|source| RefactorError::Ddl {
                input,
                origin: path.display().to_string(),
                source,
            })
        };
        Ok(Refactoring::new(
            load(source_path, InputKind::SourceSchema)?,
            load(target_path, InputKind::TargetSchema)?,
        ))
    }

    /// The session's source schema.
    pub fn source_schema(&self) -> &Schema {
        &self.source_schema
    }

    /// The session's target schema.
    pub fn target_schema(&self) -> &Schema {
        &self.target_schema
    }

    /// Sets the (already parsed) source program.
    pub fn program(mut self, program: Program) -> Refactoring {
        self.program = Some(program);
        self
    }

    /// Parses and sets the source program from `dbir` concrete syntax,
    /// resolved against the source schema.
    ///
    /// # Errors
    ///
    /// [`RefactorError::Program`] when the text fails to parse or validate.
    pub fn program_text(self, text: &str) -> Result<Refactoring, RefactorError> {
        let program =
            parse_program(text, &self.source_schema).map_err(|source| RefactorError::Program {
                origin: "<inline>".to_string(),
                source,
            })?;
        Ok(self.program(program))
    }

    /// Reads, parses and sets the source program from a file.
    ///
    /// # Errors
    ///
    /// [`RefactorError::Read`] or [`RefactorError::Program`], pointing at
    /// the file.
    pub fn program_file(self, path: &Path) -> Result<Refactoring, RefactorError> {
        let text = std::fs::read_to_string(path).map_err(|source| RefactorError::Read {
            path: path.to_path_buf(),
            source,
        })?;
        let program =
            parse_program(&text, &self.source_schema).map_err(|source| RefactorError::Program {
                origin: path.display().to_string(),
                source,
            })?;
        Ok(self.program(program))
    }

    /// Sets the synthesis configuration (defaults to
    /// [`SynthesisConfig::standard`]).
    pub fn config(mut self, config: SynthesisConfig) -> Refactoring {
        self.config = config;
        self
    }

    /// Installs a progress observer (see [`migrator::observe`] for the
    /// deterministic delivery contract).
    pub fn observer(mut self, observer: Arc<dyn SynthesisObserver>) -> Refactoring {
        self.observer = Some(observer);
        self
    }

    /// Installs a cancellation token. Clone the token before passing it in
    /// to keep a handle for cancelling the run from another thread.
    pub fn cancel_token(mut self, token: CancelToken) -> Refactoring {
        self.cancel = token;
        self
    }

    /// Bounds each run by wall-clock time: past `budget`, synthesis stops
    /// at its next cancellation point and [`Refactoring::synthesize`] fails
    /// with outcome [`SynthesisOutcome::Timeout`].
    ///
    /// The clock starts when [`Refactoring::synthesize`] is called — not
    /// when the builder is configured — and every run gets a fresh budget,
    /// so a session (or a clone of one) can be retried after a timeout.
    /// A budget composes with [`Refactoring::cancel_token`]: each run
    /// polls a per-run deadline token *linked* to the installed one, so
    /// explicit cancellation still fires under a budget. To share one
    /// *absolute* deadline across runs, install
    /// [`CancelToken::with_deadline`] explicitly instead.
    pub fn deadline(mut self, budget: Duration) -> Refactoring {
        self.budget = Some(budget);
        self
    }

    /// Installs a span [`Trace`]: every stage this session runs from here
    /// on (`synthesize`, `emit`, `validate`) opens a span, and the
    /// synthesis stage attaches its per-phase aggregates as synthetic
    /// phase spans.  Render with [`Trace::render_tree`] or export with
    /// [`Trace::to_chrome_json`].
    pub fn trace(mut self, trace: Arc<Trace>) -> Refactoring {
        self.obs.trace = Some(trace);
        self
    }

    /// Installs a [`Metrics`] registry.  Counters recorded by the pipeline
    /// are restricted to deterministic quantities (merged in enumeration
    /// order), so [`Metrics::render_counters`] is byte-identical at any
    /// thread count; wall-clock phase timings go to the separate timing
    /// channel, which is excluded from that deterministic view.
    pub fn metrics(mut self, metrics: Arc<Metrics>) -> Refactoring {
        self.obs.metrics = Some(metrics);
        self
    }

    /// Installs a [`PipelineObserver`] that receives one [`PipelineEvent`]
    /// per pipeline milestone: DDL parsed, SQL emitted, validation script
    /// staged and executed, instances compared.
    pub fn pipeline_observer(mut self, observer: Arc<dyn PipelineObserver>) -> Refactoring {
        self.obs.observer = Some(observer);
        self
    }

    /// Installs a forensics [`SearchLedger`]: every synthesis run this
    /// session performs feeds the ledger from the deterministic event main
    /// stream (rejection taxonomy, MFI-kill / death-depth / hole-domain
    /// histograms) and stamps the run's outcome on it. The caller keeps
    /// the `Arc` and reads [`SearchLedger::render`] /
    /// [`SearchLedger::to_json`] after the run — in particular after a
    /// *failed* run, which is exactly when the ledger explains what the
    /// returned [`RefactorError::Unsolved`] statistics cannot.
    ///
    /// Composes with [`Refactoring::observer`]: the installed observer
    /// still receives every event.
    pub fn forensics(mut self, ledger: Arc<SearchLedger>) -> Refactoring {
        self.obs.forensics = Some(ledger);
        self
    }

    /// Runs the synthesis stage: value-correspondence enumeration, sketch
    /// generation, MFI-guided completion and final bounded verification.
    ///
    /// # Errors
    ///
    /// [`RefactorError::InvalidConfig`] when no program was set;
    /// [`RefactorError::Unsolved`] (carrying the outcome kind and partial
    /// statistics) when the run ends without a program.
    pub fn synthesize(&self) -> Result<Synthesized, RefactorError> {
        let Some(program) = &self.program else {
            return Err(RefactorError::InvalidConfig {
                message: "no source program was set (use program / program_text / program_file)"
                    .to_string(),
            });
        };
        // DDL parsing happened in the constructors, before instruments could
        // be installed; the ingest span marks the stage at the head of the
        // run and carries the parsed table counts as arguments.
        if let Some(trace) = &self.obs.trace {
            let ingest = trace.begin("ingest");
            trace.set_arg(
                ingest,
                "source_tables",
                Json::from(self.source_schema.tables().len()),
            );
            trace.set_arg(
                ingest,
                "target_tables",
                Json::from(self.target_schema.tables().len()),
            );
            trace.end(ingest);
        }
        self.obs.event(PipelineEvent::DdlParsed {
            input: "source".to_string(),
            tables: self.source_schema.tables().len(),
        });
        self.obs.event(PipelineEvent::DdlParsed {
            input: "target".to_string(),
            tables: self.target_schema.tables().len(),
        });
        let mut synthesizer =
            Synthesizer::new(self.config.clone()).with_cancel(self.cancel.clone());
        if let Some(budget) = self.budget {
            synthesizer = synthesizer.with_deadline(budget);
        }
        // The forensics recorder taps the deterministic main stream for the
        // ledger and forwards everything to the user's observer, so the two
        // hooks compose.
        match (&self.obs.forensics, &self.observer) {
            (Some(ledger), observer) => {
                synthesizer = synthesizer.with_observer(Arc::new(ForensicsRecorder {
                    ledger: ledger.clone(),
                    inner: observer.clone(),
                }));
            }
            (None, Some(observer)) => {
                synthesizer = synthesizer.with_observer(observer.clone());
            }
            (None, None) => {}
        }
        let span = self.obs.trace.as_ref().map(|t| t.begin("synthesize"));
        let result = synthesizer.synthesize(program, &self.source_schema, &self.target_schema);
        if let Some(ledger) = &self.obs.forensics {
            ledger.set_outcome(result.outcome.as_str());
        }
        if let (Some(trace), Some(span)) = (&self.obs.trace, span) {
            trace.set_arg(span, "outcome", Json::str(format!("{:?}", result.outcome)));
            trace.set_arg(span, "iterations", Json::from(result.stats.iterations));
            trace.set_arg(
                span,
                "value_correspondences",
                Json::from(result.stats.value_correspondences),
            );
            trace.end(span);
            let phases = &result.stats.phases;
            for (name, duration) in [
                ("vc enumeration", phases.vc_enumeration_time),
                ("sketch generation", phases.sketch_generation_time),
                ("completion", phases.completion_time),
                ("bounded testing", phases.bounded_testing_time),
                ("plan compile", phases.plan_compile_time),
                ("snapshot clone", phases.snapshot_time),
                ("oracle", phases.oracle_time),
                ("final verification", result.stats.verification_time),
            ] {
                trace.add_phase(span, name, duration);
            }
        }
        self.record_synthesis_metrics(&result.stats);
        match (result.program, result.correspondence) {
            (Some(migrated), Some(correspondence)) => Ok(Synthesized {
                source_schema: self.source_schema.clone(),
                target_schema: self.target_schema.clone(),
                program: migrated,
                correspondence,
                stats: result.stats,
                outcome: result.outcome,
                obs: self.obs.clone(),
            }),
            _ => Err(RefactorError::Unsolved {
                outcome: result.outcome,
                stats: Box::new(result.stats),
            }),
        }
    }

    /// Folds a finished run's statistics into the metrics registry.
    ///
    /// Counters are restricted to quantities merged from the winning
    /// trajectory in enumeration order, so the rendered counter view is
    /// byte-identical at any thread count.  Scheduling-dependent
    /// diagnostics (oracle hits, snapshot counts) and wall-clock phase
    /// timings go to the timing channel, which the deterministic view
    /// excludes.
    fn record_synthesis_metrics(&self, stats: &SynthesisStats) {
        if self.obs.metrics.is_none() {
            return;
        }
        let counters: [(&str, u64); 8] = [
            (
                "synthesis.value_correspondences",
                stats.value_correspondences as u64,
            ),
            ("synthesis.iterations", stats.iterations as u64),
            (
                "synthesis.sketches_generated",
                stats.sketches_generated as u64,
            ),
            (
                "synthesis.invalid_instantiations",
                stats.invalid_instantiations as u64,
            ),
            ("synthesis.sequences_tested", stats.sequences_tested as u64),
            ("synthesis.truncated_checks", stats.truncated_checks as u64),
            (
                "phase.sat_blocking_clauses",
                stats.phases.sat_blocking_clauses as u64,
            ),
            ("phase.plans_compiled", stats.phases.plans_compiled),
        ];
        for (name, value) in counters {
            self.obs.counter(name, value);
        }
        let timings: [(&str, Duration); 8] = [
            ("phase.vc_enumeration", stats.phases.vc_enumeration_time),
            (
                "phase.sketch_generation",
                stats.phases.sketch_generation_time,
            ),
            ("phase.completion", stats.phases.completion_time),
            ("phase.bounded_testing", stats.phases.bounded_testing_time),
            ("phase.plan_compile", stats.phases.plan_compile_time),
            ("phase.snapshot_clone", stats.phases.snapshot_time),
            ("phase.oracle", stats.phases.oracle_time),
            ("stage.verification", stats.verification_time),
        ];
        for (name, duration) in timings {
            self.obs.time(name, duration);
        }
    }
}

/// Output of the synthesis stage: the migrated program, the value
/// correspondence it was derived from, and the run's statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Synthesized {
    /// The source schema the session started from.
    pub source_schema: Schema,
    /// The target schema the program was migrated to.
    pub target_schema: Schema,
    /// The synthesized program over the target schema.
    pub program: Program,
    /// The winning value correspondence (drives the data migration).
    pub correspondence: ValueCorrespondence,
    /// Statistics of the run.
    pub stats: SynthesisStats,
    /// Always [`SynthesisOutcome::Solved`] (unsolved runs fail the stage);
    /// carried so reports need only one source of truth.
    pub outcome: SynthesisOutcome,
    /// The observability instruments inherited from the session
    /// (equality-transparent; see [`ObsContext`]).
    obs: ObsContext,
}

impl Synthesized {
    /// The migrated program in `dbir` concrete syntax.
    pub fn program_text(&self) -> String {
        program_to_string(&self.program)
    }

    /// Runs the emission stage: renders the program as parameterized SQL
    /// and plans + renders the executable data-migration script, all in
    /// `dialect`.
    pub fn emit(&self, dialect: Box<dyn Dialect>) -> Emitted {
        let span = self.obs.trace.as_ref().map(|t| t.begin("emit"));
        let functions = sqlbridge::program_to_sql(&self.program, dialect.as_ref());
        let program_sql = render_sql_program(&self.program, dialect.as_ref());
        let target_ddl = schema_to_ddl(&self.target_schema, dialect.as_ref());
        let script = migration_script(
            &self.source_schema,
            &self.target_schema,
            &self.correspondence,
            dialect.as_ref(),
        );
        let migration_sql = render_migration_script(&script, dialect.as_ref());
        if let (Some(trace), Some(span)) = (&self.obs.trace, span) {
            trace.set_arg(span, "dialect", Json::str(dialect.name()));
            trace.set_arg(span, "functions", Json::from(functions.len()));
            trace.set_arg(span, "statements", Json::from(script.statements.len()));
            trace.end(span);
        }
        self.obs.counter("emit.functions", functions.len() as u64);
        self.obs
            .counter("emit.statements", script.statements.len() as u64);
        self.obs.event(PipelineEvent::Emitted {
            dialect: dialect.name().to_string(),
            functions: functions.len(),
            statements: script.statements.len(),
        });
        if self.obs.observer.is_some() {
            // One progress event per planned data move, in script order, so
            // a `watch` stream shows the shape of the migration before
            // anything executes. The plan is deterministic, so these lines
            // are part of the byte-identical main stream.
            let plan = sqlbridge::migration::migration_plan(
                &self.source_schema,
                &self.target_schema,
                &self.correspondence,
            );
            let total = plan.inserts.len();
            for (index, insert) in plan.inserts.iter().enumerate() {
                self.obs.event(PipelineEvent::DataMovePlanned {
                    target: insert.target.to_string(),
                    tables: insert.tables.iter().map(|t| t.to_string()).collect(),
                    statement: index + 1,
                    statements: total,
                });
            }
        }
        Emitted {
            source_schema: self.source_schema.clone(),
            target_schema: self.target_schema.clone(),
            correspondence: self.correspondence.clone(),
            dialect,
            functions,
            program_sql,
            target_ddl,
            script,
            migration_sql,
            obs: self.obs.clone(),
        }
    }
}

/// Output of the emission stage: every SQL artifact of the refactoring,
/// rendered in one dialect.
pub struct Emitted {
    /// The source schema (kept for the validation stage).
    pub source_schema: Schema,
    /// The target schema.
    pub target_schema: Schema,
    /// The winning value correspondence.
    pub correspondence: ValueCorrespondence,
    /// The dialect everything below is rendered in.
    pub dialect: Box<dyn Dialect>,
    /// Per-function parameterized SQL (placeholder order, fresh-id
    /// parameters).
    pub functions: Vec<SqlFunction>,
    /// The whole program as one annotated SQL script.
    pub program_sql: String,
    /// The target schema as `CREATE TABLE` DDL.
    pub target_ddl: String,
    /// The executable data-migration plan (staging renames, data moves,
    /// cleanup).
    pub script: MigrationScript,
    /// The migration script rendered as one executable SQL text.
    pub migration_sql: String,
    /// The observability instruments inherited from the session.
    obs: ObsContext,
}

impl std::fmt::Debug for Emitted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Emitted")
            .field("dialect", &self.dialect.name())
            .field("functions", &self.functions.len())
            .field("program_sql", &self.program_sql)
            .field("migration_sql", &self.migration_sql)
            .finish()
    }
}

impl Emitted {
    /// Runs the validation stage: seeds a deterministic source instance,
    /// executes the emitted DDL + seed inserts + migration script on
    /// `backend`, and compares the resulting target instance with the
    /// dbir-level prediction (surrogate keys up to a bijection).
    ///
    /// The script is validated in this emission's dialect — except on a
    /// real `sqlite3` backend, which can only execute the SQLite rendering
    /// (the in-memory engine accepts every provided dialect).
    ///
    /// A semantic mismatch is **not** an error: it comes back as a
    /// [`Validated`] whose outcome has `ok == false` (use
    /// [`Validated::into_result`] to turn it into one).
    ///
    /// # Errors
    ///
    /// [`RefactorError::Backend`] when the backend cannot run the script at
    /// all.
    pub fn validate(
        &self,
        backend: &mut dyn Backend,
        rows_per_table: usize,
    ) -> Result<Validated, RefactorError> {
        let sqlite = sqlbridge::Sqlite;
        let dialect: &dyn Dialect = if backend.name() == "sqlite3" {
            &sqlite
        } else {
            self.dialect.as_ref()
        };
        let span = self.obs.trace.as_ref().map(|t| t.begin("validate"));
        let result = sqlexec::validate_migration_observed(
            &self.source_schema,
            &self.target_schema,
            &self.correspondence,
            backend,
            rows_per_table,
            dialect,
            self.obs.observer.as_deref(),
        );
        if let (Some(trace), Some(span)) = (&self.obs.trace, span) {
            trace.set_arg(span, "backend", Json::str(backend.name()));
            if let Ok(outcome) = &result {
                trace.set_arg(span, "ok", Json::from(outcome.ok));
            }
            trace.end(span);
        }
        let outcome = result.map_err(|source| RefactorError::Backend { source })?;
        self.obs.counter(
            "validate.tables_compared",
            self.target_schema.tables().len() as u64,
        );
        self.obs
            .counter("validate.diffs", outcome.diffs.len() as u64);
        Ok(Validated { outcome })
    }
}

/// Output of the validation stage.
#[derive(Debug, Clone)]
pub struct Validated {
    /// The executed-vs-predicted comparison, with per-table diffs on
    /// mismatch.
    pub outcome: ValidationOutcome,
}

impl Validated {
    /// `true` when the executed migration matched the prediction.
    pub fn ok(&self) -> bool {
        self.outcome.ok
    }

    /// Converts a mismatch into [`RefactorError::ValidationFailed`].
    ///
    /// # Errors
    ///
    /// [`RefactorError::ValidationFailed`] when the outcome is not `ok`.
    pub fn into_result(self) -> Result<Validated, RefactorError> {
        if self.outcome.ok {
            Ok(self)
        } else {
            Err(RefactorError::ValidationFailed {
                outcome: Box::new(self.outcome),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_program_is_a_config_error() {
        let source = Schema::parse("T(a: int)").unwrap();
        let target = Schema::parse("T(a: int)").unwrap();
        let err = Refactoring::new(source, target).synthesize().unwrap_err();
        assert!(err.is_usage(), "{err}");
        assert!(err.to_string().contains("program"), "{err}");
    }

    #[test]
    fn ddl_errors_carry_spans_and_input_kind() {
        let err = Refactoring::from_ddl(
            "CREATE TABLE T (a INTEGER);",
            "CREATE TABLE T (\n  a GEOGRAPHY\n);",
        )
        .unwrap_err();
        let rendered = err.to_string();
        assert!(rendered.contains("target schema"), "{rendered}");
        assert!(rendered.contains("--> 2:5"), "{rendered}");
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn unknown_backend_is_a_usage_error() {
        let err = backend_by_name("oracle").unwrap_err();
        assert!(err.is_usage());
        assert!(err.to_string().contains("oracle"));
    }
}
