//! Drives the `migrate` executable end-to-end on the music-library example
//! (a scenario that is not one of the 20 paper benchmarks).

use std::path::PathBuf;
use std::process::Command;

fn example_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/migrate")
        .join(file)
}

fn migrate(extra: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_migrate"))
        .arg("--source-ddl")
        .arg(example_path("source.sql"))
        .arg("--target-ddl")
        .arg(example_path("target.sql"))
        .arg("--program")
        .arg(example_path("program.dbp"))
        .args(extra)
        .output()
        .expect("migrate binary runs")
}

#[test]
fn migrates_the_music_library_end_to_end() {
    let output = migrate(&[]);
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("utf-8 output");

    // The synthesized program routes artists through the new table.
    assert!(stdout.contains("-- migrated program --"), "{stdout}");
    assert!(
        stdout.contains("Album JOIN Artist ON Album.artist_id = Artist.artist_id"),
        "{stdout}"
    );

    // The SQL rendering is parameterized and uses a shared fresh id for the
    // insert-over-join.
    assert!(
        stdout
            .contains("INSERT INTO Artist (artist_name, artist_id) VALUES (:artist, :fresh_id_0);"),
        "{stdout}"
    );
    assert!(
        stdout.contains("SELECT Album.title, Artist.artist_name FROM Album JOIN Artist"),
        "{stdout}"
    );

    // The data-migration script fills the referenced table first and links
    // both sides with the same skolem key.
    let artist_insert = stdout
        .find("INSERT INTO Artist (artist_id, artist_name) SELECT")
        .expect("artist migration insert");
    let album_insert = stdout
        .find("INSERT INTO Album (album_id, title, artist_id) SELECT")
        .expect("album migration insert");
    assert!(artist_insert < album_insert, "{stdout}");
    let skolem_inserts = stdout
        .lines()
        .filter(|l| l.starts_with("INSERT INTO") && l.contains("Album.album_id * 1 + 0"))
        .count();
    assert_eq!(skolem_inserts, 2, "{stdout}");

    // Stats come out as JSON.
    assert!(stdout.contains("\"succeeded\": true"), "{stdout}");
    assert!(stdout.contains("\"total_time_secs\""), "{stdout}");
}

#[test]
fn sqlite_dialect_switches_placeholders() {
    let output = migrate(&["--dialect", "sqlite"]);
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).expect("utf-8 output");
    assert!(stdout.contains("WHERE Album.album_id = ?1"), "{stdout}");
    assert!(!stdout.contains(":id"), "{stdout}");
}

#[test]
fn bad_ddl_yields_a_spanned_diagnostic_and_nonzero_exit() {
    let output = Command::new(env!("CARGO_BIN_EXE_migrate"))
        .arg("--source-ddl")
        .arg(example_path("program.dbp")) // not DDL
        .arg("--target-ddl")
        .arg(example_path("target.sql"))
        .arg("--program")
        .arg(example_path("program.dbp"))
        .output()
        .expect("migrate binary runs");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("error:"), "{stderr}");
    assert!(stderr.contains("-->"), "{stderr}");
}

/// Interned-value display audit: programs carrying string and binary
/// *literals* must come back out of the CLI as human-readable text —
/// resolved payloads in the migrated program and SQL literals in the
/// emitted statements — never as raw interner symbols like `Sym(17)`.
#[test]
fn interned_literals_print_resolved_not_as_symbols() {
    let dir = std::env::temp_dir().join("migrate-cli-literals");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let source_ddl = dir.join("source.sql");
    let target_ddl = dir.join("target.sql");
    let program = dir.join("program.dbp");
    std::fs::write(
        &source_ddl,
        "CREATE TABLE Track (track_id INTEGER PRIMARY KEY, title VARCHAR(255), genre VARCHAR(255));\n",
    )
    .unwrap();
    std::fs::write(
        &target_ddl,
        "CREATE TABLE Track (track_id INTEGER PRIMARY KEY, title VARCHAR(255), style VARCHAR(255));\n",
    )
    .unwrap();
    std::fs::write(
        &program,
        r#"update addTrack(id: int, title: string)
    INSERT INTO Track VALUES (track_id: id, title: title, genre: "rock & roll");

query getTrack(id: int)
    SELECT title, genre FROM Track WHERE track_id = id;
"#,
    )
    .unwrap();

    let output = Command::new(env!("CARGO_BIN_EXE_migrate"))
        .arg("--source-ddl")
        .arg(&source_ddl)
        .arg("--target-ddl")
        .arg(&target_ddl)
        .arg("--program")
        .arg(&program)
        .output()
        .expect("migrate binary runs");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("utf-8 output");

    // The migrated program prints the literal in concrete syntax...
    assert!(stdout.contains("\"rock & roll\""), "{stdout}");
    // ...the emitted SQL renders it as a SQL string literal...
    assert!(stdout.contains("'rock & roll'"), "{stdout}");
    // ...and no interner symbol ever leaks into user-facing output.
    assert!(!stdout.contains("Sym("), "{stdout}");
    assert!(!stdout.contains("Blob("), "{stdout}");
}

#[test]
fn missing_arguments_print_usage() {
    let output = Command::new(env!("CARGO_BIN_EXE_migrate"))
        .output()
        .expect("migrate binary runs");
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("usage:"));
}

/// `--validate` executes the emitted migration on the in-memory backend
/// and reports the comparison against the dbir prediction.
#[test]
fn validate_flag_executes_the_migration_on_the_memory_backend() {
    let output = migrate(&["--validate"]);
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("utf-8 output");
    assert!(
        stdout.contains("-- validation (memory backend) --"),
        "{stdout}"
    );
    assert!(stdout.contains("\"validated\": true"), "{stdout}");
    assert!(stdout.contains("\"backend\": \"memory\""), "{stdout}");
}

/// `--validate --backend sqlite3` runs the same script through a real
/// sqlite3 when one is installed (skips cleanly otherwise).
#[test]
fn validate_flag_supports_the_sqlite3_backend_when_present() {
    let probe = Command::new("sqlite3").arg("--version").output();
    if !probe.map(|o| o.status.success()).unwrap_or(false) {
        eprintln!("sqlite3 binary not found; skipping");
        return;
    }
    let output = migrate(&["--validate", "--backend", "sqlite3"]);
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("utf-8 output");
    assert!(stdout.contains("\"backend\": \"sqlite3\""), "{stdout}");
    assert!(stdout.contains("\"validated\": true"), "{stdout}");
}

#[test]
fn unknown_backend_is_a_usage_error() {
    let output = migrate(&["--validate", "--backend", "oracle"]);
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("unknown backend"));
}

/// The postgres dialect renders identity surrogate keys and $N parameters.
#[test]
fn postgres_dialect_end_to_end() {
    let output = migrate(&["--dialect", "postgres"]);
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("utf-8 output");
    assert!(stdout.contains("= $1"), "{stdout}");
    assert!(stdout.contains("GENERATED ALWAYS AS IDENTITY"), "{stdout}");
    assert!(stdout.contains("OVERRIDING SYSTEM VALUE"), "{stdout}");
}

/// The MySQL dialect renders bare `?` placeholders, backtick-safe
/// identifiers and AUTO_INCREMENT surrogate keys — and the script still
/// validates end-to-end on the in-memory backend.
#[test]
fn mysql_dialect_end_to_end() {
    let output = migrate(&["--dialect", "mysql", "--validate"]);
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("utf-8 output");
    assert!(stdout.contains("= ?"), "{stdout}");
    assert!(!stdout.contains("= ?1"), "{stdout}");
    assert!(stdout.contains("AUTO_INCREMENT"), "{stdout}");
    assert!(stdout.contains("\"dialect\": \"mysql\""), "{stdout}");
    assert!(stdout.contains("\"validated\": true"), "{stdout}");
}

/// `--json` emits the entire result as one machine-readable document that
/// parses via `sqlbridge::Json` and carries every stage's output.
#[test]
fn json_flag_emits_one_parseable_document() {
    let output = migrate(&["--json", "--validate"]);
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("utf-8 output");
    let document = sqlbridge::Json::parse(&stdout).expect("--json output parses");
    assert_eq!(
        document.get("outcome").and_then(|o| o.as_str()),
        Some("solved")
    );
    assert!(document
        .get("correspondence")
        .is_some_and(|c| c.to_compact_string().contains("Artist.artist_name")));
    assert!(document
        .get("program")
        .and_then(|p| p.as_str())
        .is_some_and(|p| p.contains("INSERT INTO Album")));
    assert!(document
        .get("sql")
        .and_then(|s| s.get("script"))
        .and_then(|s| s.as_str())
        .is_some_and(|s| s.contains("INSERT INTO Artist")));
    assert!(document
        .get("migration")
        .and_then(|m| m.get("statements"))
        .and_then(|s| s.as_array())
        .is_some_and(|s| !s.is_empty()));
    assert_eq!(
        document
            .get("validation")
            .and_then(|v| v.get("validated"))
            .and_then(|v| v.as_bool()),
        Some(true)
    );
    assert_eq!(
        document
            .get("stats")
            .and_then(|s| s.get("outcome"))
            .and_then(|o| o.as_str()),
        Some("solved")
    );
    // One document, nothing else on stdout.
    assert!(!stdout.contains("-- migrated program --"), "{stdout}");
}

/// An explicit `--max-vcs 0` is rejected as a usage error instead of
/// silently falling back to the default budget.
#[test]
fn max_vcs_zero_is_rejected() {
    let output = migrate(&["--max-vcs", "0"]);
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("at least 1"), "{stderr}");
}

/// `--budget-secs` is wired to the deadline API: a budget of 0 stays
/// unbounded, and an expired deadline is reported as outcome `timeout`,
/// never `no_solution`. (The flag has whole-second granularity and the
/// worked example finishes well within a second, so the timeout path is
/// driven in-process through the same facade path the binary uses.)
#[test]
fn budget_secs_zero_stays_unbounded_but_an_expired_deadline_times_out() {
    let unbounded = migrate(&["--budget-secs", "0"]);
    assert!(unbounded.status.success());

    let session = pipeline::Refactoring::from_ddl_files(
        &example_path("source.sql"),
        &example_path("target.sql"),
    )
    .unwrap()
    .program_file(&example_path("program.dbp"))
    .unwrap()
    .deadline(std::time::Duration::ZERO);
    let err = session.synthesize().unwrap_err();
    assert_eq!(
        err.outcome(),
        Some(migrator::SynthesisOutcome::Timeout),
        "an expired budget must be a timeout, not no_solution"
    );
}

/// In `--json` mode the document goes to *stdout* even for failed runs, so
/// `migrate --json | jq` works on exactly the runs where the diagnostic
/// document matters; stderr carries only a one-line summary.
#[test]
fn json_failure_document_still_goes_to_stdout() {
    let dir = std::env::temp_dir().join("migrate-cli-json-failure");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let source_ddl = dir.join("source.sql");
    let target_ddl = dir.join("target.sql");
    let program = dir.join("program.dbp");
    std::fs::write(&source_ddl, "CREATE TABLE T (a INTEGER, b TEXT, c TEXT);\n").unwrap();
    std::fs::write(&target_ddl, "CREATE TABLE T (a INTEGER, d TEXT);\n").unwrap();
    std::fs::write(
        &program,
        "update add(a: int, b: string, c: string)\n\
         \x20   INSERT INTO T VALUES (a: a, b: b, c: c);\n\
         query get(a: int)\n\
         \x20   SELECT b, c FROM T WHERE a = a;\n",
    )
    .unwrap();
    let output = Command::new(env!("CARGO_BIN_EXE_migrate"))
        .arg("--source-ddl")
        .arg(&source_ddl)
        .arg("--target-ddl")
        .arg(&target_ddl)
        .arg("--program")
        .arg(&program)
        .arg("--json")
        .output()
        .expect("migrate binary runs");
    assert_eq!(output.status.code(), Some(1));
    let stdout = String::from_utf8(output.stdout).expect("utf-8 output");
    let document = sqlbridge::Json::parse(&stdout).expect("failure document parses");
    assert_eq!(
        document.get("outcome").and_then(|o| o.as_str()),
        Some("no_solution")
    );
    assert!(document.get("stats").is_some());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("no equivalent program"),
        "stderr carries the summary: {stderr}"
    );
}

/// Writes the unsolvable T-schema example (a dropped column the queries
/// still read) into a fresh temp dir and returns the three input paths.
fn failing_example(dir_name: &str) -> (PathBuf, PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join(dir_name);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let source_ddl = dir.join("source.sql");
    let target_ddl = dir.join("target.sql");
    let program = dir.join("program.dbp");
    std::fs::write(&source_ddl, "CREATE TABLE T (a INTEGER, b TEXT, c TEXT);\n").unwrap();
    std::fs::write(&target_ddl, "CREATE TABLE T (a INTEGER, d TEXT);\n").unwrap();
    std::fs::write(
        &program,
        "update add(a: int, b: string, c: string)\n\
         \x20   INSERT INTO T VALUES (a: a, b: b, c: c);\n\
         query get(a: int)\n\
         \x20   SELECT b, c FROM T WHERE a = a;\n",
    )
    .unwrap();
    (source_ddl, target_ddl, program)
}

/// `migrate explain` on a failing run prints the search-forensics report —
/// the rejection taxonomy, not the migration artifacts — and keeps the
/// failure exit code.
#[test]
fn explain_subcommand_reports_forensics_on_a_failing_run() {
    let (source_ddl, target_ddl, program) = failing_example("migrate-cli-explain-failure");
    let output = Command::new(env!("CARGO_BIN_EXE_migrate"))
        .arg("explain")
        .arg("--source-ddl")
        .arg(&source_ddl)
        .arg("--target-ddl")
        .arg(&target_ddl)
        .arg("--program")
        .arg(&program)
        .output()
        .expect("migrate binary runs");
    assert_eq!(output.status.code(), Some(1));
    let stdout = String::from_utf8(output.stdout).expect("utf-8 output");
    assert!(stdout.contains("== search forensics =="), "{stdout}");
    assert!(
        stdout.contains("rejection taxonomy (per correspondence):"),
        "{stdout}"
    );
    assert!(stdout.contains("candidates checked:"), "{stdout}");
    // Forensics only — no migration artifacts on a failed run.
    assert!(!stdout.contains("-- migrated program --"), "{stdout}");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("no equivalent program"), "{stderr}");
}

/// `migrate explain` reports solved runs too — exit 0, with the solved
/// correspondence recorded in the taxonomy.
#[test]
fn explain_subcommand_reports_solved_runs_with_exit_zero() {
    let output = Command::new(env!("CARGO_BIN_EXE_migrate"))
        .arg("explain")
        .arg("--source-ddl")
        .arg(example_path("source.sql"))
        .arg("--target-ddl")
        .arg(example_path("target.sql"))
        .arg("--program")
        .arg(example_path("program.dbp"))
        .output()
        .expect("migrate binary runs");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("utf-8 output");
    assert!(stdout.contains("== search forensics =="), "{stdout}");
    assert!(stdout.contains("outcome: solved"), "{stdout}");
    assert!(!stdout.contains("-- migrated program --"), "{stdout}");
}

/// `explain --json` emits the structured explain document: outcome, stats
/// and the forensics summary with the taxonomy counters.
#[test]
fn explain_json_emits_the_structured_forensics_document() {
    let (source_ddl, target_ddl, program) = failing_example("migrate-cli-explain-json");
    let output = Command::new(env!("CARGO_BIN_EXE_migrate"))
        .arg("explain")
        .arg("--source-ddl")
        .arg(&source_ddl)
        .arg("--target-ddl")
        .arg(&target_ddl)
        .arg("--program")
        .arg(&program)
        .arg("--json")
        .output()
        .expect("migrate binary runs");
    assert_eq!(output.status.code(), Some(1));
    let stdout = String::from_utf8(output.stdout).expect("utf-8 output");
    let document = sqlbridge::Json::parse(&stdout).expect("explain document parses");
    assert_eq!(
        document.get("outcome").and_then(|o| o.as_str()),
        Some("no_solution")
    );
    let forensics = document.get("forensics").expect("forensics key");
    assert!(forensics.get("taxonomy").is_some(), "{stdout}");
    assert!(forensics.get("candidates").is_some(), "{stdout}");
    assert_eq!(
        forensics.get("outcome").and_then(|o| o.as_str()),
        Some("no_solution")
    );
}

/// A plain `migrate --json` failure document embeds the same forensics
/// summary under `"forensics"` — and the exit code stays 1.
#[test]
fn json_failure_document_embeds_forensics() {
    let (source_ddl, target_ddl, program) = failing_example("migrate-cli-json-forensics");
    let output = Command::new(env!("CARGO_BIN_EXE_migrate"))
        .arg("--source-ddl")
        .arg(&source_ddl)
        .arg("--target-ddl")
        .arg(&target_ddl)
        .arg("--program")
        .arg(&program)
        .arg("--json")
        .output()
        .expect("migrate binary runs");
    assert_eq!(output.status.code(), Some(1));
    let stdout = String::from_utf8(output.stdout).expect("utf-8 output");
    let document = sqlbridge::Json::parse(&stdout).expect("failure document parses");
    let forensics = document.get("forensics").expect("forensics key");
    assert!(
        forensics
            .get("taxonomy")
            .and_then(|t| t.get("all_completions_blocked"))
            .and_then(|v| v.as_i128())
            .is_some(),
        "{stdout}"
    );
}

/// `--events` writes an NDJSON stream: one JSON object per line, strictly
/// increasing `seq`, and a terminal `run_finished` event carrying the
/// outcome — on solved and failed runs alike.
#[test]
fn events_flag_writes_a_wellformed_ndjson_stream() {
    let dir = std::env::temp_dir().join("migrate-cli-events");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let events_path = dir.join("events.ndjson");
    let output = migrate(&["--events", events_path.to_str().unwrap()]);
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let text = std::fs::read_to_string(&events_path).expect("events file written");
    let mut last_seq = -1i128;
    let mut kinds = Vec::new();
    for line in text.lines() {
        let event = sqlbridge::Json::parse(line).expect("each line parses");
        let seq = event
            .get("seq")
            .and_then(|s| s.as_i128())
            .expect("seq field");
        assert!(seq > last_seq, "seq must be strictly increasing: {line}");
        last_seq = seq;
        kinds.push(
            event
                .get("type")
                .and_then(|t| t.as_str())
                .expect("type tag")
                .to_string(),
        );
    }
    assert!(
        kinds.iter().any(|k| k == "ddl_parsed"),
        "pipeline events present: {kinds:?}"
    );
    assert!(
        kinds.iter().any(|k| k == "correspondence_enumerated"),
        "synthesis events present: {kinds:?}"
    );
    assert_eq!(
        kinds.last().map(String::as_str),
        Some("run_finished"),
        "{kinds:?}"
    );
    let last = text.lines().last().unwrap();
    let terminal = sqlbridge::Json::parse(last).unwrap();
    assert_eq!(
        terminal.get("outcome").and_then(|o| o.as_str()),
        Some("solved")
    );
}

/// `--trace` writes a Chrome trace-event JSON file covering every pipeline
/// stage and synthesis phase; `--progress` streams events to stderr.
#[test]
fn trace_flag_writes_chrome_trace_and_progress_streams_events() {
    let dir = std::env::temp_dir().join("migrate-cli-trace");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace_path = dir.join("trace.json");
    let output = Command::new(env!("CARGO_BIN_EXE_migrate"))
        .arg("--source-ddl")
        .arg(example_path("source.sql"))
        .arg("--target-ddl")
        .arg(example_path("target.sql"))
        .arg("--program")
        .arg(example_path("program.dbp"))
        .arg("--validate")
        .arg("--progress")
        .arg("--trace")
        .arg(&trace_path)
        .output()
        .expect("migrate binary runs");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    // The trace file is valid Chrome trace-event JSON with all four stage
    // spans and the synthesis phase track.
    let text = std::fs::read_to_string(&trace_path).expect("trace file written");
    let parsed = sqlbridge::Json::parse(&text).expect("trace JSON parses");
    let events = parsed
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    let names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
        .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
        .collect();
    for required in ["ingest", "synthesize", "emit", "validate", "oracle"] {
        assert!(
            names.contains(&required),
            "missing `{required}` in {names:?}"
        );
    }

    // Progress lines arrived on stderr, from both event families.
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("[migrate] parsed source DDL"), "{stderr}");
    assert!(stderr.contains("solved after"), "{stderr}");
    assert!(stderr.contains("validation on memory: ok"), "{stderr}");
}
