//! Implementation of the `migrate` command-line tool.
//!
//! `migrate` is a thin client of the [`pipeline::Refactoring`] facade: it
//! parses arguments, builds a session (inputs, dialect, budget), runs the
//! typed stages — synthesize → emit → validate — and renders the stage
//! outputs, either as the human-readable section format or (`--json`) as
//! one machine-readable JSON document.
//!
//! The binary in `main.rs` is a thin wrapper around [`run`] so integration
//! tests can drive the tool in-process as well as through the executable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use migrator::{SynthesisConfig, SynthesisEvent, SynthesisObserver};
use pipeline::{
    backend_by_name, dialect_by_name, report, NdjsonWriter, PipelineEvent, PipelineObserver,
    RefactorError, Refactoring, SearchLedger, Trace, Validated,
};

/// Exit code for usage errors.
pub const EXIT_USAGE: i32 = 2;
/// Exit code for parse/synthesis failures.
pub const EXIT_FAILURE: i32 = 1;

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Path to the source-schema DDL file.
    pub source_ddl: PathBuf,
    /// Path to the target-schema DDL file.
    pub target_ddl: PathBuf,
    /// Path to the source program (dbir concrete syntax).
    pub program: PathBuf,
    /// SQL dialect for emission (`ansi`, `sqlite`, `postgres` or `mysql`).
    pub dialect: String,
    /// Cap on value correspondences to try (0 = the standard budget; the
    /// flag itself rejects 0, see [`parse_args`]).
    pub max_value_correspondences: usize,
    /// Wall-clock budget in seconds (0 = unbounded). Past it the run stops
    /// and reports a `timeout` outcome.
    pub budget_secs: u64,
    /// Emit the whole result as one JSON document instead of the
    /// section-formatted text.
    pub json: bool,
    /// Execute the emitted migration against a backend and verify the
    /// resulting instance against the dbir prediction.
    pub validate: bool,
    /// Backend for `--validate` (`memory` or `sqlite3`).
    pub backend: String,
    /// Write a Chrome trace-event JSON file covering every pipeline stage
    /// and synthesis phase to this path.
    pub trace: Option<PathBuf>,
    /// Stream one progress line per synthesis/pipeline event to stderr as
    /// the run happens.
    pub progress: bool,
    /// Run the `explain` subcommand: synthesize only, then print the
    /// search-forensics report — for failed outcomes too — instead of the
    /// migration artifacts.
    pub explain: bool,
    /// Stream every synthesis/pipeline event to this path as JSON lines
    /// (the `tracecheck ndjson`-checkable wire format).
    pub events: Option<PathBuf>,
    /// Thread budget for parallel CEGIS (0 = the default limit). The
    /// deterministic outputs — stats, events, forensics — are byte-identical
    /// at any value.
    pub threads: usize,
}

/// The usage string printed on `--help` and argument errors.
pub const USAGE: &str = "\
usage: migrate [explain] --source-ddl <file.sql> --target-ddl <file.sql> --program <file.dbp>
               [--dialect ansi|sqlite|postgres|mysql] [--max-vcs <n>]
               [--budget-secs <n>] [--threads <n>] [--json] [--trace <out.json>]
               [--events <out.ndjson>] [--progress]
               [--validate [--backend memory|sqlite3]]
       migrate serve [--addr <host:port>] [--workers <n>] [--threads <n>]
       migrate client <addr> <command> [options]

The `serve` subcommand starts the migration job server; `client` talks to
it (submit/status/list/result/watch/cancel/shutdown). See
`migrate serve --help` and `migrate client --help` for their options.

Reads the source schema and target schema as SQL DDL and the source program
in the dbir concrete syntax, synthesizes an equivalent program over the
target schema, and prints the migrated program, its SQL rendering, a
data-migration script and the synthesis statistics (JSON).

The `explain` subcommand runs synthesis only and prints the search
forensics instead of the migration artifacts: the rejection taxonomy per
value correspondence, which minimum failing inputs killed the candidate
cohorts, at what update-call depth, and which sketch-hole domains were
implicated. The report is printed for every outcome — `no_solution`,
`timeout` and `cancelled` included — and is deterministic: byte-identical
at any --threads value for runs that do not hit a wall-clock deadline.
The exit code still reflects the outcome (0 only when solved).

--max-vcs caps how many value correspondences the search may try; it must
be at least 1 (omit the flag for the standard budget).

--budget-secs bounds the run by wall-clock time; a run that exceeds it is
reported with outcome `timeout` — distinctly from `no_solution`, which
means the search space was genuinely exhausted.

--threads caps the parallel CEGIS thread budget; it must be at least 1
(omit the flag for the machine's default). Deterministic outputs do not
depend on it.

--json replaces the section-formatted text with one machine-readable JSON
document holding the correspondence, program, SQL, migration script,
validation outcome (when --validate ran), statistics and the outcome kind.
On a failed run the document embeds the forensics summary under
`\"forensics\"`.

--trace writes a Chrome trace-event JSON file (loadable in Perfetto or
chrome://tracing) with one span per pipeline stage — ingest, synthesize,
emit, validate — and the synthesis phases (enumeration, sketching,
completion, bounded testing, oracle, ...) as aggregated spans on a second
track. The file is written even when synthesis fails.

--events streams every synthesis and pipeline event to a file as JSON
lines (one object per line, strictly increasing `seq`, a terminal
`run_finished` line), written whichever way the run ends. Validate with
`tracecheck ndjson <file>`.

--progress streams one line per synthesis and pipeline event to stderr
while the run happens.

With --validate, additionally executes the emitted migration end-to-end on
the selected backend (a seeded source instance, the DDL and the data-move
script) and verifies the resulting target instance against the dbir-level
prediction; a mismatch exits non-zero.";

/// Parses command-line arguments (without the binary name).
///
/// # Errors
///
/// Returns a usage message when arguments are missing, unknown or out of
/// range (`--max-vcs 0` is rejected rather than silently falling back to
/// the default budget).
pub fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut source_ddl = None;
    let mut target_ddl = None;
    let mut program = None;
    let mut dialect = "ansi".to_string();
    let mut max_value_correspondences = 0usize;
    let mut budget_secs = 0u64;
    let mut json = false;
    let mut validate = false;
    let mut backend = "memory".to_string();
    let mut trace = None;
    let mut progress = false;
    let mut events = None;
    let mut threads = 0usize;

    // The one positional subcommand, accepted only in the leading position
    // (everything else is a flag, so there is no ambiguity).
    let explain = args.first().map(String::as_str) == Some("explain");
    let args = if explain { &args[1..] } else { args };

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut take = |what: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("missing value for `{what}`"))
        };
        match arg.as_str() {
            "--source-ddl" => source_ddl = Some(PathBuf::from(take("--source-ddl")?)),
            "--target-ddl" => target_ddl = Some(PathBuf::from(take("--target-ddl")?)),
            "--program" => program = Some(PathBuf::from(take("--program")?)),
            "--dialect" => dialect = take("--dialect")?,
            "--max-vcs" => {
                let value = take("--max-vcs")?;
                max_value_correspondences = value
                    .parse()
                    .map_err(|_| format!("`--max-vcs` expects a number, found `{value}`"))?;
                if max_value_correspondences == 0 {
                    return Err(
                        "`--max-vcs` must be at least 1 (omit the flag for the standard budget)"
                            .to_string(),
                    );
                }
            }
            "--budget-secs" => {
                let value = take("--budget-secs")?;
                budget_secs = value
                    .parse()
                    .map_err(|_| format!("`--budget-secs` expects a number, found `{value}`"))?;
            }
            "--threads" => {
                let value = take("--threads")?;
                threads = value
                    .parse()
                    .map_err(|_| format!("`--threads` expects a number, found `{value}`"))?;
                if threads == 0 {
                    return Err(
                        "`--threads` must be at least 1 (omit the flag for the default limit)"
                            .to_string(),
                    );
                }
            }
            "--json" => json = true,
            "--validate" => validate = true,
            "--backend" => backend = take("--backend")?,
            "--trace" => trace = Some(PathBuf::from(take("--trace")?)),
            "--events" => events = Some(PathBuf::from(take("--events")?)),
            "--progress" => progress = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
        }
    }
    Ok(Options {
        source_ddl: source_ddl.ok_or_else(|| format!("`--source-ddl` is required\n\n{USAGE}"))?,
        target_ddl: target_ddl.ok_or_else(|| format!("`--target-ddl` is required\n\n{USAGE}"))?,
        program: program.ok_or_else(|| format!("`--program` is required\n\n{USAGE}"))?,
        dialect,
        max_value_correspondences,
        budget_secs,
        json,
        validate,
        backend,
        trace,
        progress,
        explain,
        events,
        threads,
    })
}

/// The `--progress` reporter: one stderr line per event, written as the
/// run happens (buffering them into [`RunOutput`] would defeat liveness).
#[derive(Debug)]
struct ProgressReporter;

impl SynthesisObserver for ProgressReporter {
    fn event(&self, event: &SynthesisEvent) {
        eprintln!("[migrate] {event}");
    }
}

impl PipelineObserver for ProgressReporter {
    fn pipeline_event(&self, event: &PipelineEvent) {
        eprintln!("[migrate] {event}");
    }
}

/// Fans one synthesis event stream out to several observers: the session
/// holds a single observer slot, but `--progress` and `--events` may both
/// be requested.
struct SynthesisFanout(Vec<Arc<dyn SynthesisObserver>>);

impl SynthesisObserver for SynthesisFanout {
    fn event(&self, event: &SynthesisEvent) {
        for observer in &self.0 {
            observer.event(event);
        }
    }

    fn speculation(&self, event: &SynthesisEvent) {
        for observer in &self.0 {
            observer.speculation(event);
        }
    }
}

/// The pipeline-event counterpart of [`SynthesisFanout`].
struct PipelineFanout(Vec<Arc<dyn PipelineObserver>>);

impl PipelineObserver for PipelineFanout {
    fn pipeline_event(&self, event: &PipelineEvent) {
        for observer in &self.0 {
            observer.pipeline_event(event);
        }
    }
}

/// Writes the recorded trace as pretty-printed Chrome trace-event JSON.
fn write_trace(path: &PathBuf, trace: &Trace) -> Result<(), (i32, String)> {
    let mut text = trace.to_chrome_json().to_pretty_string();
    text.push('\n');
    std::fs::write(path, text).map_err(|error| {
        (
            EXIT_FAILURE,
            format!("cannot write trace file `{}`: {error}", path.display()),
        )
    })
}

/// Renders the `explain` subcommand's output: the forensics report goes to
/// stdout for *every* outcome (that is the point — failed runs must be
/// explainable), while the exit code still reflects whether a program was
/// found.
fn explain_output(
    options: &Options,
    outcome: migrator::SynthesisOutcome,
    stats: &migrator::SynthesisStats,
    ledger: &SearchLedger,
    summary: String,
) -> RunOutput {
    let code = if outcome == migrator::SynthesisOutcome::Solved {
        0
    } else {
        EXIT_FAILURE
    };
    let stdout = if options.json {
        report::explain_json(outcome, stats, ledger).to_pretty_string()
    } else {
        ledger.render()
    };
    RunOutput {
        code,
        stdout,
        stderr: summary,
    }
}

/// Maps a facade error to the tool's `(exit code, stderr text)` shape.
fn to_exit(error: RefactorError) -> (i32, String) {
    let code = if error.is_usage() {
        EXIT_USAGE
    } else {
        EXIT_FAILURE
    };
    (code, error.to_string())
}

/// What one tool invocation produced: the text for each stream plus the
/// exit code. In `--json` mode the machine-readable document always lands
/// on `stdout` — even for failed runs — so `migrate --json | jq` works on
/// exactly the runs where the diagnostic document matters; `stderr` then
/// carries only a one-line summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutput {
    /// Process exit code (0 = success).
    pub code: i32,
    /// Text for standard output.
    pub stdout: String,
    /// Text for standard error (empty on success).
    pub stderr: String,
}

impl RunOutput {
    fn ok(stdout: String) -> RunOutput {
        RunOutput {
            code: 0,
            stdout,
            stderr: String::new(),
        }
    }

    fn fail(code: i32, stderr: String) -> RunOutput {
        RunOutput {
            code,
            stdout: String::new(),
            stderr,
        }
    }
}

/// Runs the tool.
pub fn run(options: &Options) -> RunOutput {
    if options.threads > 0 {
        pipeline::set_thread_limit(options.threads);
    }
    let output = run_with_observers(options);
    if options.threads > 0 {
        // Restore the default so in-process callers (tests, library
        // embeddings) are not left with this run's budget.
        pipeline::set_thread_limit(0);
    }
    output
}

fn run_with_observers(options: &Options) -> RunOutput {
    match run_inner(options) {
        Ok(output) => output,
        Err((code, stderr)) if options.json => {
            // Keep the one-document contract for every failure class:
            // input, configuration and backend errors become a minimal
            // `{"outcome": "error", ...}` document on stdout.
            let document = pipeline::Json::object()
                .with("outcome", pipeline::Json::str("error"))
                .with("error", pipeline::Json::str(stderr.as_str()));
            RunOutput {
                code,
                stdout: document.to_pretty_string(),
                stderr,
            }
        }
        Err((code, stderr)) => RunOutput::fail(code, stderr),
    }
}

fn run_inner(options: &Options) -> Result<RunOutput, (i32, String)> {
    let dialect = dialect_by_name(&options.dialect).ok_or_else(|| {
        (
            EXIT_USAGE,
            format!(
                "unknown dialect `{}` (expected `ansi`, `sqlite`, `postgres` or `mysql`)",
                options.dialect
            ),
        )
    })?;

    // Assemble the session: inputs, budget, configuration.
    let mut config = SynthesisConfig::standard();
    if options.max_value_correspondences > 0 {
        config.max_value_correspondences = options.max_value_correspondences;
    }
    let mut session = Refactoring::from_ddl_files(&options.source_ddl, &options.target_ddl)
        .map_err(to_exit)?
        .program_file(&options.program)
        .map_err(to_exit)?
        .config(config);
    if options.budget_secs > 0 {
        session = session.deadline(Duration::from_secs(options.budget_secs));
    }
    let trace = options.trace.as_ref().map(|_| Arc::new(Trace::new()));
    if let Some(trace) = &trace {
        session = session.trace(trace.clone());
    }
    // The forensics ledger is always attached: it is O(histogram) cheap,
    // and a failed run must be explainable after the fact — in the --json
    // failure document, the text failure report and `migrate explain`.
    let ledger = Arc::new(SearchLedger::new());
    session = session.forensics(ledger.clone());
    let events_writer = match &options.events {
        Some(path) => {
            let file = std::fs::File::create(path).map_err(|error| {
                (
                    EXIT_FAILURE,
                    format!("cannot create events file `{}`: {error}", path.display()),
                )
            })?;
            Some(Arc::new(NdjsonWriter::new(Box::new(
                std::io::BufWriter::new(file),
            ))))
        }
        None => None,
    };
    let mut synthesis_observers: Vec<Arc<dyn SynthesisObserver>> = Vec::new();
    let mut pipeline_observers: Vec<Arc<dyn PipelineObserver>> = Vec::new();
    if options.progress {
        let reporter = Arc::new(ProgressReporter);
        synthesis_observers.push(reporter.clone());
        pipeline_observers.push(reporter);
    }
    if let Some(writer) = &events_writer {
        synthesis_observers.push(writer.clone());
        pipeline_observers.push(writer.clone());
    }
    match synthesis_observers.len() {
        0 => {}
        1 => session = session.observer(synthesis_observers.pop().expect("len checked")),
        _ => session = session.observer(Arc::new(SynthesisFanout(synthesis_observers))),
    }
    match pipeline_observers.len() {
        0 => {}
        1 => session = session.pipeline_observer(pipeline_observers.pop().expect("len checked")),
        _ => session = session.pipeline_observer(Arc::new(PipelineFanout(pipeline_observers))),
    }
    // The trace and events files are written whichever way the run ends: a
    // record that only exists for successful runs cannot explain a failed
    // one.
    let flush_trace = |trace: &Option<Arc<Trace>>| -> Result<(), (i32, String)> {
        match (&options.trace, trace) {
            (Some(path), Some(trace)) => write_trace(path, trace),
            _ => Ok(()),
        }
    };
    let finish_events = |outcome: &str| -> Result<(), (i32, String)> {
        match (&events_writer, &options.events) {
            (Some(writer), Some(path)) if !writer.finish(outcome) => Err((
                EXIT_FAILURE,
                format!("cannot write events file `{}`", path.display()),
            )),
            _ => Ok(()),
        }
    };

    // Stage 1: synthesize.
    let synthesized = match session.synthesize() {
        Ok(synthesized) => synthesized,
        Err(error @ RefactorError::Unsolved { .. }) => {
            flush_trace(&trace)?;
            let summary = error.to_string();
            let RefactorError::Unsolved { outcome, stats } = error else {
                unreachable!("matched Unsolved above");
            };
            finish_events(outcome.as_str())?;
            if options.explain {
                return Ok(explain_output(options, outcome, &stats, &ledger, summary));
            }
            return Ok(if options.json {
                RunOutput {
                    code: EXIT_FAILURE,
                    stdout: report::failure_json(outcome, &stats, Some(&ledger)).to_pretty_string(),
                    stderr: summary,
                }
            } else {
                let mut err = format!("{summary}\n");
                let _ = writeln!(
                    err,
                    "{}",
                    report::stats_json(&stats, outcome).to_pretty_string()
                );
                let _ = write!(err, "{}", ledger.render());
                RunOutput::fail(EXIT_FAILURE, err)
            });
        }
        Err(error) => {
            let _ = finish_events("error");
            return Err(to_exit(error));
        }
    };

    if options.explain {
        flush_trace(&trace)?;
        finish_events(synthesized.outcome.as_str())?;
        return Ok(explain_output(
            options,
            synthesized.outcome,
            &synthesized.stats,
            &ledger,
            String::new(),
        ));
    }

    // Stage 2: emit.
    let emitted = synthesized.emit(dialect);

    // Stage 3 (optional): validate.
    let validation: Option<Validated> = if options.validate {
        let mut backend = backend_by_name(&options.backend).map_err(to_exit)?;
        Some(
            emitted
                .validate(backend.as_mut(), sqlexec::DEFAULT_ROWS_PER_TABLE)
                .map_err(to_exit)?,
        )
    } else {
        None
    };
    flush_trace(&trace)?;
    finish_events(synthesized.outcome.as_str())?;

    // Render.
    if options.json {
        let document = report::result_json(
            &synthesized,
            &emitted,
            validation.as_ref().map(|v| &v.outcome),
        );
        let text = document.to_pretty_string();
        // The document (which carries "validated": false and the diffs)
        // stays on stdout even on a mismatch; only the summary goes to
        // stderr.
        return Ok(
            if let Some(failed) = validation.as_ref().filter(|v| !v.ok()) {
                RunOutput {
                    code: EXIT_FAILURE,
                    stdout: text,
                    stderr: format!(
                        "validation FAILED on backend `{}` (see the JSON document on stdout)",
                        failed.outcome.backend
                    ),
                }
            } else {
                RunOutput::ok(text)
            },
        );
    }

    let mut out = String::new();
    let _ = writeln!(out, "-- value correspondence --");
    let _ = writeln!(out, "{}", synthesized.correspondence);
    let _ = writeln!(out, "-- migrated program --");
    let _ = writeln!(out, "{}", synthesized.program_text());
    let _ = writeln!(out, "-- SQL ({}) --", emitted.dialect.name());
    let _ = writeln!(out, "{}", emitted.program_sql);
    let _ = writeln!(out, "-- data migration --");
    let _ = writeln!(out, "{}", emitted.migration_sql);
    if let Some(validated) = &validation {
        let _ = writeln!(
            out,
            "-- validation ({} backend) --",
            validated.outcome.backend
        );
        let _ = writeln!(
            out,
            "{}",
            report::validation_json(&validated.outcome).to_pretty_string()
        );
        let _ = writeln!(out);
        if !validated.ok() {
            let mut err = format!(
                "validation FAILED on backend `{}`:\n",
                validated.outcome.backend
            );
            for diff in &validated.outcome.diffs {
                let _ = writeln!(err, "  {diff}");
            }
            let _ = write!(err, "{out}");
            return Err((EXIT_FAILURE, err));
        }
    }
    let _ = writeln!(out, "-- stats --");
    let _ = write!(
        out,
        "{}",
        report::stats_json(&synthesized.stats, synthesized.outcome).to_pretty_string()
    );
    Ok(RunOutput::ok(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_args_requires_the_three_inputs() {
        let err = parse_args(&args(&["--source-ddl", "a.sql"])).unwrap_err();
        assert!(err.contains("--target-ddl"), "{err}");
        let ok = parse_args(&args(&[
            "--source-ddl",
            "a.sql",
            "--target-ddl",
            "b.sql",
            "--program",
            "p.dbp",
            "--dialect",
            "sqlite",
            "--max-vcs",
            "7",
            "--budget-secs",
            "30",
            "--json",
        ]))
        .unwrap();
        assert_eq!(ok.dialect, "sqlite");
        assert_eq!(ok.max_value_correspondences, 7);
        assert_eq!(ok.budget_secs, 30);
        assert!(ok.json);
    }

    #[test]
    fn parse_args_rejects_unknown_flags() {
        let err = parse_args(&args(&["--frobnicate"])).unwrap_err();
        assert!(err.contains("unknown argument"), "{err}");
        assert!(err.contains("usage:"), "{err}");
    }

    #[test]
    fn max_vcs_zero_is_a_usage_error() {
        let err = parse_args(&args(&[
            "--source-ddl",
            "a.sql",
            "--target-ddl",
            "b.sql",
            "--program",
            "p.dbp",
            "--max-vcs",
            "0",
        ]))
        .unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
    }

    fn options(dialect: &str) -> Options {
        Options {
            source_ddl: "a.sql".into(),
            target_ddl: "b.sql".into(),
            program: "p.dbp".into(),
            dialect: dialect.into(),
            max_value_correspondences: 0,
            budget_secs: 0,
            json: false,
            validate: false,
            backend: "memory".into(),
            trace: None,
            progress: false,
            explain: false,
            events: None,
            threads: 0,
        }
    }

    #[test]
    fn unknown_dialect_is_a_usage_error() {
        let output = run(&options("oracle"));
        assert_eq!(output.code, EXIT_USAGE);
        assert!(output.stdout.is_empty());
        assert!(output.stderr.contains("oracle"));
        assert!(output.stderr.contains("mysql"), "{}", output.stderr);
    }

    #[test]
    fn missing_file_is_reported() {
        let mut options = options("ansi");
        options.source_ddl = "/nonexistent/a.sql".into();
        options.target_ddl = "/nonexistent/b.sql".into();
        options.program = "/nonexistent/p.dbp".into();
        let output = run(&options);
        assert_eq!(output.code, EXIT_FAILURE);
        assert!(output.stderr.contains("cannot read"));
    }

    #[test]
    fn stats_json_has_the_expected_keys() {
        let json = report::stats_json(
            &migrator::SynthesisStats::default(),
            migrator::SynthesisOutcome::Solved,
        )
        .to_compact_string();
        for key in [
            "outcome",
            "succeeded",
            "value_correspondences",
            "iterations",
            "largest_search_space",
            "synthesis_time_secs",
            "total_time_secs",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
