//! Implementation of the `migrate` command-line tool.
//!
//! `migrate` wraps the whole pipeline in SQL: it reads the source schema and
//! the target schema as DDL, the source program in the `dbir` concrete
//! syntax, runs the synthesizer, and prints
//!
//! 1. the value correspondence the refactoring was derived from,
//! 2. the migrated program (concrete syntax),
//! 3. its rendering as parameterized SQL in the requested dialect,
//! 4. a data-migration script for rows already stored under the source
//!    schema, and
//! 5. the synthesis statistics as JSON.
//!
//! The binary in `main.rs` is a thin wrapper around [`run`] so integration
//! tests can drive the tool in-process as well as through the executable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::path::PathBuf;

use dbir::parser::parse_program;
use dbir::pretty::program_to_string;
use migrator::{SynthesisConfig, SynthesisStats, Synthesizer};
use sqlbridge::emit::Dialect;
use sqlbridge::json::Json;
use sqlbridge::migration::{migration_script, render_migration_script};
use sqlbridge::{dialect_by_name, parse_ddl, render_sql_program};

/// Exit code for usage errors.
pub const EXIT_USAGE: i32 = 2;
/// Exit code for parse/synthesis failures.
pub const EXIT_FAILURE: i32 = 1;

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Path to the source-schema DDL file.
    pub source_ddl: PathBuf,
    /// Path to the target-schema DDL file.
    pub target_ddl: PathBuf,
    /// Path to the source program (dbir concrete syntax).
    pub program: PathBuf,
    /// SQL dialect for emission (`ansi`, `sqlite` or `postgres`).
    pub dialect: String,
    /// Cap on value correspondences to try (0 = the standard budget).
    pub max_value_correspondences: usize,
    /// Execute the emitted migration against a backend and verify the
    /// resulting instance against the dbir prediction.
    pub validate: bool,
    /// Backend for `--validate` (`memory` or `sqlite3`).
    pub backend: String,
}

/// The usage string printed on `--help` and argument errors.
pub const USAGE: &str = "\
usage: migrate --source-ddl <file.sql> --target-ddl <file.sql> --program <file.dbp>
               [--dialect ansi|sqlite|postgres] [--max-vcs <n>]
               [--validate [--backend memory|sqlite3]]

Reads the source schema and target schema as SQL DDL and the source program
in the dbir concrete syntax, synthesizes an equivalent program over the
target schema, and prints the migrated program, its SQL rendering, a
data-migration script and the synthesis statistics (JSON).

With --validate, additionally executes the emitted migration end-to-end on
the selected backend (a seeded source instance, the DDL and the data-move
script) and verifies the resulting target instance against the dbir-level
prediction; a mismatch exits non-zero.";

/// Parses command-line arguments (without the binary name).
///
/// # Errors
///
/// Returns a usage message when arguments are missing or unknown.
pub fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut source_ddl = None;
    let mut target_ddl = None;
    let mut program = None;
    let mut dialect = "ansi".to_string();
    let mut max_value_correspondences = 0usize;
    let mut validate = false;
    let mut backend = "memory".to_string();

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut take = |what: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("missing value for `{what}`"))
        };
        match arg.as_str() {
            "--source-ddl" => source_ddl = Some(PathBuf::from(take("--source-ddl")?)),
            "--target-ddl" => target_ddl = Some(PathBuf::from(take("--target-ddl")?)),
            "--program" => program = Some(PathBuf::from(take("--program")?)),
            "--dialect" => dialect = take("--dialect")?,
            "--max-vcs" => {
                let value = take("--max-vcs")?;
                max_value_correspondences = value
                    .parse()
                    .map_err(|_| format!("`--max-vcs` expects a number, found `{value}`"))?;
            }
            "--validate" => validate = true,
            "--backend" => backend = take("--backend")?,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
        }
    }
    Ok(Options {
        source_ddl: source_ddl.ok_or_else(|| format!("`--source-ddl` is required\n\n{USAGE}"))?,
        target_ddl: target_ddl.ok_or_else(|| format!("`--target-ddl` is required\n\n{USAGE}"))?,
        program: program.ok_or_else(|| format!("`--program` is required\n\n{USAGE}"))?,
        dialect,
        max_value_correspondences,
        validate,
        backend,
    })
}

/// Renders synthesis statistics as a JSON object.
pub fn stats_to_json(stats: &SynthesisStats, succeeded: bool) -> Json {
    Json::object()
        .with("succeeded", Json::Bool(succeeded))
        .with("value_correspondences", stats.value_correspondences.into())
        .with("sketches_generated", stats.sketches_generated.into())
        .with("iterations", stats.iterations.into())
        .with(
            "invalid_instantiations",
            stats.invalid_instantiations.into(),
        )
        .with("largest_search_space", stats.largest_search_space.into())
        .with("sequences_tested", stats.sequences_tested.into())
        .with(
            "synthesis_time_secs",
            stats.synthesis_time.as_secs_f64().into(),
        )
        .with(
            "verification_time_secs",
            stats.verification_time.as_secs_f64().into(),
        )
        .with("total_time_secs", stats.total_time().as_secs_f64().into())
}

/// Builds the backend selected by `--backend`.
fn make_backend(name: &str) -> Result<Box<dyn sqlexec::Backend>, (i32, String)> {
    match name.to_ascii_lowercase().as_str() {
        "memory" => Ok(Box::new(sqlexec::MemoryBackend::new())),
        "sqlite3" | "sqlite" => sqlexec::Sqlite3Backend::create()
            .map(|b| Box::new(b) as Box<dyn sqlexec::Backend>)
            .map_err(|e| (EXIT_FAILURE, e.to_string())),
        other => Err((
            EXIT_USAGE,
            format!("unknown backend `{other}` (expected `memory` or `sqlite3`)"),
        )),
    }
}

/// Renders a validation outcome as a JSON object.
pub fn validation_to_json(outcome: &sqlexec::ValidationOutcome) -> Json {
    let diffs = outcome
        .diffs
        .iter()
        .map(|d| Json::str(d.to_string()))
        .collect();
    Json::object()
        .with("validated", Json::Bool(outcome.ok))
        .with("backend", Json::str(&outcome.backend))
        .with("dialect", Json::str(&outcome.dialect))
        .with("seeded_rows", outcome.seeded_rows.into())
        .with("migrated_rows", outcome.migrated_rows.into())
        .with("diffs", Json::Array(diffs))
}

/// Runs the tool: returns the full stdout text on success, or
/// `(exit code, stderr text)` on failure.
pub fn run(options: &Options) -> Result<String, (i32, String)> {
    let dialect = dialect_by_name(&options.dialect).ok_or_else(|| {
        (
            EXIT_USAGE,
            format!(
                "unknown dialect `{}` (expected `ansi`, `sqlite` or `postgres`)",
                options.dialect
            ),
        )
    })?;
    let dialect: &dyn Dialect = dialect.as_ref();

    let read = |path: &PathBuf| {
        std::fs::read_to_string(path)
            .map_err(|e| (EXIT_FAILURE, format!("cannot read {}: {e}", path.display())))
    };
    let source_sql = read(&options.source_ddl)?;
    let target_sql = read(&options.target_ddl)?;
    let program_text = read(&options.program)?;

    let parse_schema = |sql: &str, path: &PathBuf| {
        parse_ddl(sql).map_err(|e| (EXIT_FAILURE, format!("in {}:\n{e}", path.display())))
    };
    let source_schema = parse_schema(&source_sql, &options.source_ddl)?;
    let target_schema = parse_schema(&target_sql, &options.target_ddl)?;
    let source_program = parse_program(&program_text, &source_schema).map_err(|e| {
        (
            EXIT_FAILURE,
            format!("in {}: {e}", options.program.display()),
        )
    })?;

    let mut config = SynthesisConfig::standard();
    if options.max_value_correspondences > 0 {
        config.max_value_correspondences = options.max_value_correspondences;
    }
    let result =
        Synthesizer::new(config).synthesize(&source_program, &source_schema, &target_schema);

    let mut out = String::new();
    match (&result.program, &result.correspondence) {
        (Some(program), Some(phi)) => {
            let _ = writeln!(out, "-- value correspondence --");
            let _ = writeln!(out, "{phi}");
            let _ = writeln!(out, "-- migrated program --");
            let _ = writeln!(out, "{}", program_to_string(program));
            let _ = writeln!(out, "-- SQL ({}) --", dialect.name());
            let _ = writeln!(out, "{}", render_sql_program(program, dialect));
            let _ = writeln!(out, "-- data migration --");
            let script = migration_script(&source_schema, &target_schema, phi, dialect);
            let _ = writeln!(out, "{}", render_migration_script(&script, dialect));
            if options.validate {
                let mut backend = make_backend(&options.backend)?;
                // Validate the dialect we printed — except on a real
                // sqlite3, which can only execute the SQLite rendering (the
                // in-memory engine accepts all provided dialects).
                let validation_dialect: Box<dyn Dialect> = if backend.name() == "sqlite3" {
                    Box::new(sqlbridge::Sqlite)
                } else {
                    dialect_by_name(&options.dialect).expect("checked above")
                };
                let outcome = sqlexec::validate_migration_dialect(
                    &source_schema,
                    &target_schema,
                    phi,
                    backend.as_mut(),
                    sqlexec::DEFAULT_ROWS_PER_TABLE,
                    validation_dialect.as_ref(),
                )
                .map_err(|e| (EXIT_FAILURE, format!("validation could not run: {e}")))?;
                let _ = writeln!(out, "-- validation ({} backend) --", outcome.backend);
                let _ = writeln!(out, "{}", validation_to_json(&outcome).to_pretty_string());
                let _ = writeln!(out);
                if !outcome.ok {
                    let mut err = format!("validation FAILED on backend `{}`:\n", outcome.backend);
                    for diff in &outcome.diffs {
                        let _ = writeln!(err, "  {diff}");
                    }
                    let _ = write!(err, "{out}");
                    return Err((EXIT_FAILURE, err));
                }
            }
            let _ = writeln!(out, "-- stats --");
            let _ = write!(
                out,
                "{}",
                stats_to_json(&result.stats, true).to_pretty_string()
            );
            Ok(out)
        }
        _ => {
            let mut err =
                String::from("no equivalent program found within the configured budget\n");
            let _ = write!(
                err,
                "{}",
                stats_to_json(&result.stats, false).to_pretty_string()
            );
            Err((EXIT_FAILURE, err))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_args_requires_the_three_inputs() {
        let err = parse_args(&args(&["--source-ddl", "a.sql"])).unwrap_err();
        assert!(err.contains("--target-ddl"), "{err}");
        let ok = parse_args(&args(&[
            "--source-ddl",
            "a.sql",
            "--target-ddl",
            "b.sql",
            "--program",
            "p.dbp",
            "--dialect",
            "sqlite",
            "--max-vcs",
            "7",
        ]))
        .unwrap();
        assert_eq!(ok.dialect, "sqlite");
        assert_eq!(ok.max_value_correspondences, 7);
    }

    #[test]
    fn parse_args_rejects_unknown_flags() {
        let err = parse_args(&args(&["--frobnicate"])).unwrap_err();
        assert!(err.contains("unknown argument"), "{err}");
        assert!(err.contains("usage:"), "{err}");
    }

    #[test]
    fn unknown_dialect_is_a_usage_error() {
        let options = Options {
            source_ddl: "a.sql".into(),
            target_ddl: "b.sql".into(),
            program: "p.dbp".into(),
            dialect: "oracle".into(),
            max_value_correspondences: 0,
            validate: false,
            backend: "memory".into(),
        };
        let (code, message) = run(&options).unwrap_err();
        assert_eq!(code, EXIT_USAGE);
        assert!(message.contains("oracle"));
    }

    #[test]
    fn missing_file_is_reported() {
        let options = Options {
            source_ddl: "/nonexistent/a.sql".into(),
            target_ddl: "/nonexistent/b.sql".into(),
            program: "/nonexistent/p.dbp".into(),
            dialect: "ansi".into(),
            max_value_correspondences: 0,
            validate: false,
            backend: "memory".into(),
        };
        let (code, message) = run(&options).unwrap_err();
        assert_eq!(code, EXIT_FAILURE);
        assert!(message.contains("cannot read"));
    }

    #[test]
    fn stats_json_has_the_expected_keys() {
        let json = stats_to_json(&SynthesisStats::default(), true).to_compact_string();
        for key in [
            "succeeded",
            "value_correspondences",
            "iterations",
            "largest_search_space",
            "synthesis_time_secs",
            "total_time_secs",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
