//! The `migrate` binary: end-to-end schema refactoring over SQL DDL.

use migrator_cli::{parse_args, run, EXIT_USAGE};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The serving subcommands run live (a server blocks until shutdown, a
    // watch streams as events happen), so they bypass the buffered
    // RunOutput path entirely.
    match args.first().map(String::as_str) {
        Some("serve") => std::process::exit(served::serve_cli(&args[1..])),
        Some("client") => std::process::exit(served::client_cli(&args[1..])),
        _ => {}
    }
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(EXIT_USAGE);
        }
    };
    let output = run(&options);
    print!("{}", output.stdout);
    if !output.stderr.is_empty() {
        eprintln!("{}", output.stderr);
    }
    std::process::exit(output.code);
}
