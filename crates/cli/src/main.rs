//! The `migrate` binary: end-to-end schema refactoring over SQL DDL.

use migrator_cli::{parse_args, run, EXIT_USAGE};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(EXIT_USAGE);
        }
    };
    let output = run(&options);
    print!("{}", output.stdout);
    if !output.stderr.is_empty() {
        eprintln!("{}", output.stderr);
    }
    std::process::exit(output.code);
}
