//! The migration differential suite: every benchmark's emitted migration,
//! executed end-to-end on the [`MemoryBackend`], must reproduce the
//! dbir-predicted target instance — plus a property test hammering one
//! fixed scenario with random small source instances.
//!
//! This is the acceptance gate for the emitter: all benchmarks that
//! synthesize must also *validate*, so a regression anywhere in the
//! migration planner, the SQL renderer, the tokenizer or the engine fails
//! this suite rather than shipping as silently wrong SQL text.

use benchmarks::{all_benchmarks, Category};
use dbir::equiv::TestConfig;
use dbir::schema::QualifiedAttr;
use dbir::{Instance, Schema, Value};
use migrator::{SynthesisConfig, Synthesizer, ValueCorrespondence};
use proptest::prelude::*;
use sqlbridge::{
    instance_inserts, migration_plan, migration_script, render_migration_script, schema_to_ddl,
    Sqlite,
};
use sqlexec::validate::{compare_instances, predicted_target};
use sqlexec::{validate_migration, Backend, MemoryBackend};

/// The synthesis configuration the experiments harness uses (mirrored here
/// because `bench` depends on this crate, so this crate cannot depend on
/// `bench`).
fn config_for(category: Category) -> SynthesisConfig {
    let mut config = SynthesisConfig::standard();
    if category == Category::RealWorld {
        config.testing = TestConfig {
            max_arg_combinations: Some(4),
            ..TestConfig::default()
        };
        config.verification = TestConfig {
            max_arg_combinations: Some(4),
            ..TestConfig::default()
        };
    }
    config
}

/// Benchmarks known not to synthesize within the standard budget (recorded
/// red in BENCH_results.json since PR 1). They produce no correspondence,
/// hence nothing to validate.
const KNOWN_UNSYNTHESIZED: &[&str] = &["MathHotSpot", "probable-engine"];

#[test]
fn all_benchmark_migrations_validate_on_the_memory_backend() {
    let mut validated = 0usize;
    let mut skipped = Vec::new();
    for benchmark in all_benchmarks() {
        let result = Synthesizer::new(config_for(benchmark.category)).synthesize(
            &benchmark.source_program,
            &benchmark.source_schema,
            &benchmark.target_schema,
        );
        let Some(phi) = &result.correspondence else {
            skipped.push(benchmark.name.clone());
            continue;
        };
        let outcome = validate_migration(
            &benchmark.source_schema,
            &benchmark.target_schema,
            phi,
            &mut MemoryBackend::new(),
            3,
        )
        .unwrap_or_else(|e| panic!("{}: backend failed: {e}", benchmark.name));
        assert!(
            outcome.ok,
            "{}: emitted migration does not reproduce the dbir-predicted target:\n{:#?}",
            benchmark.name, outcome
        );
        validated += 1;
    }
    assert_eq!(
        skipped, KNOWN_UNSYNTHESIZED,
        "the set of unsynthesized benchmarks changed"
    );
    assert_eq!(validated, 18, "all 18 synthesizing benchmarks validate");
}

// ---------------------------------------------------------------------------
// Property test: one fixed surrogate-key-split scenario, random instances.
// ---------------------------------------------------------------------------

fn split_schemas() -> (Schema, Schema, ValueCorrespondence) {
    let qa = |t: &str, a: &str| QualifiedAttr::new(t, a);
    let source = Schema::parse(
        "Person(pid: int, name: string)\n\
         Address(pid: int, city: string)",
    )
    .unwrap();
    let mut target = Schema::parse(
        "Account(pid: int, name: string, addr_id: id)\n\
         Addr(addr_id: id, city: string)",
    )
    .unwrap();
    target
        .add_foreign_key(qa("Account", "addr_id"), qa("Addr", "addr_id"))
        .unwrap();
    let mut phi = ValueCorrespondence::new();
    phi.add(qa("Person", "pid"), qa("Account", "pid"));
    phi.add(qa("Person", "name"), qa("Account", "name"));
    phi.add(qa("Address", "city"), qa("Addr", "city"));
    (source, target, phi)
}

fn person_strategy() -> impl Strategy<Value = Vec<Value>> {
    (0i64..4, "[a-z]{1,4}").prop_map(|(pid, name)| vec![Value::Int(pid), Value::str(name)])
}

fn address_strategy() -> impl Strategy<Value = Vec<Value>> {
    (0i64..4, "[a-z]{1,4}").prop_map(|(pid, city)| vec![Value::Int(pid), Value::str(city)])
}

fn source_instance_strategy() -> impl Strategy<Value = Instance> {
    (
        proptest::collection::vec(person_strategy(), 0..5),
        proptest::collection::vec(address_strategy(), 0..5),
    )
        .prop_map(|(people, addresses)| {
            let (source, _, _) = split_schemas();
            let mut instance = Instance::empty(&source);
            for person in people {
                instance.insert(&"Person".into(), person);
            }
            for address in addresses {
                instance.insert(&"Address".into(), address);
            }
            instance
        })
}

proptest! {
    /// For random small source instances — duplicate keys, dangling join
    /// ends, empty tables — executing the emitted migration script on the
    /// engine produces exactly the instance the plan predicts.
    #[test]
    fn random_instances_migrate_to_the_predicted_target(seed in source_instance_strategy()) {
        let (source, target, phi) = split_schemas();
        let dialect = Sqlite;

        let mut script = String::new();
        script.push_str(&schema_to_ddl(&source, &dialect));
        for statement in instance_inserts(&source, &seed, &dialect) {
            script.push_str(&statement);
            script.push('\n');
        }
        let migration = migration_script(&source, &target, &phi, &dialect);
        script.push_str(&render_migration_script(&migration, &dialect));

        let mut backend = MemoryBackend::new();
        backend.execute_script(&script).unwrap();
        let actual = backend.snapshot(&target).unwrap();

        let plan = migration_plan(&source, &target, &phi);
        let expected = predicted_target(&plan, &source, &target, &seed).unwrap();
        let diffs = compare_instances(&expected, &actual, &target);
        prop_assert!(diffs.is_empty(), "{:#?}", diffs);

        // The migration leaves exactly the target schema behind: the
        // staging and source-only tables are gone.
        prop_assert_eq!(backend.database().tables().len(), target.table_count());
    }
}
