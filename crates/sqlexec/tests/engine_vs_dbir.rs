//! Differential test: the emitted *program* SQL (update functions rendered
//! by `sqlbridge::emit`) executed on the in-memory engine must leave the
//! database in the same state as `dbir` evaluation of the same update on
//! the same instance.
//!
//! This is precisely the test that would have caught PR 1's multi-table
//! `DELETE` ordering bug, which was only found by hand against a real
//! sqlite3: the lowering's temporary snapshot table, correlated `EXISTS`
//! deletes and their ordering all execute here.

use dbir::eval::Evaluator;
use dbir::parser::parse_program;
use dbir::{Instance, Program, Schema, Value};
use sqlbridge::{function_to_sql, Sqlite};
use sqlexec::{Database, Params};

fn motivating() -> (Schema, Program) {
    let schema = Schema::parse(
        "Instructor(InstId: int, IName: string, PicId: id)\n\
         TA(TaId: int, TName: string, PicId: id)\n\
         Picture(PicId: id, Pic: binary)",
    )
    .unwrap();
    let program = parse_program(
        r#"
        update addInstructor(id: int, name: string, pic: binary)
            INSERT INTO Instructor JOIN Picture ON Instructor.PicId = Picture.PicId
                VALUES (InstId: id, IName: name, Pic: pic);
        query getInstructorInfo(id: int)
            SELECT IName, Pic FROM Instructor JOIN Picture ON Instructor.PicId = Picture.PicId
                WHERE InstId = id;
        update deleteInstructor(id: int)
            DELETE Instructor, Picture FROM Instructor JOIN Picture ON Instructor.PicId = Picture.PicId
                WHERE InstId = id;
        "#,
        &schema,
    )
    .unwrap();
    (schema, program)
}

fn sorted(instance: &Instance, schema: &Schema) -> Vec<(String, Vec<Vec<Value>>)> {
    schema
        .tables()
        .iter()
        .map(|t| {
            let mut rows = instance.rows(&t.name).to_vec();
            rows.sort();
            (t.name.as_str().to_string(), rows)
        })
        .collect()
}

/// Runs one update both ways — dbir evaluation and emitted SQL on the
/// engine — from the same starting instance, and asserts the resulting
/// instances hold the same row multisets.
fn check_update(
    schema: &Schema,
    program: &Program,
    start: &Instance,
    function: &str,
    args: Vec<Value>,
    fresh_uid_base: u64,
) {
    // dbir side.
    let mut expected = start.clone();
    let mut evaluator = Evaluator::with_uid_counter(schema, fresh_uid_base);
    let f = program.function(function).unwrap();
    evaluator.call(f, &args, &mut expected).unwrap();

    // SQL side: emitted statements with positional `?N` parameters; fresh
    // identifiers become extra trailing parameters, bound to the same UIDs
    // the dbir evaluator mints.
    let sql = function_to_sql(f, &Sqlite);
    let mut params: Vec<Value> = args.clone();
    for (i, _) in sql.fresh_ids.iter().enumerate() {
        params.push(Value::Uid(fresh_uid_base + i as u64));
    }
    let mut db = Database::from_instance(schema, start);
    for statement in &sql.statements {
        db.execute_script(statement, &Params::positional(params.clone()))
            .unwrap_or_else(|e| panic!("{function}: {e}\nstatement: {statement}"));
    }
    let actual = db.to_instance(schema).unwrap();

    assert_eq!(
        sorted(&expected, schema),
        sorted(&actual, schema),
        "{function} diverges between dbir evaluation and the engine"
    );
}

#[test]
fn insert_over_join_matches_dbir() {
    let (schema, program) = motivating();
    let start = Instance::empty(&schema);
    check_update(
        &schema,
        &program,
        &start,
        "addInstructor",
        vec![Value::Int(1), Value::str("ada"), Value::bytes([1, 2])],
        100,
    );
}

/// The PR 1 regression: deleting an instructor and the picture it
/// references must remove both rows even though the two deletes read each
/// other's tables. Sequential correlated deletes would orphan the picture.
#[test]
fn multi_table_delete_matches_dbir() {
    let (schema, program) = motivating();
    let mut start = Instance::empty(&schema);
    for i in 0..3i64 {
        start.insert(
            &"Instructor".into(),
            vec![
                Value::Int(i),
                Value::str(format!("inst{i}")),
                Value::Uid(500 + i as u64),
            ],
        );
        start.insert(
            &"Picture".into(),
            vec![Value::Uid(500 + i as u64), Value::bytes([i as u8])],
        );
    }
    // An unrelated TA keeps its picture-less row.
    start.insert(
        &"TA".into(),
        vec![Value::Int(9), Value::str("ta"), Value::Uid(900)],
    );
    check_update(
        &schema,
        &program,
        &start,
        "deleteInstructor",
        vec![Value::Int(1)],
        1000,
    );
    // And explicitly: the engine run must delete exactly one instructor and
    // one picture.
    let mut db = Database::from_instance(&schema, &start);
    let f = program.function("deleteInstructor").unwrap();
    let sql = function_to_sql(f, &Sqlite);
    for statement in &sql.statements {
        db.execute_script(statement, &Params::positional(vec![Value::Int(1)]))
            .unwrap();
    }
    assert_eq!(db.table("Instructor").unwrap().rows.len(), 2);
    assert_eq!(db.table("Picture").unwrap().rows.len(), 2);
}

#[test]
fn emitted_queries_match_dbir_evaluation() {
    let (schema, program) = motivating();
    let mut instance = Instance::empty(&schema);
    for i in 0..2i64 {
        instance.insert(
            &"Instructor".into(),
            vec![
                Value::Int(i),
                Value::str(format!("inst{i}")),
                Value::Uid(700 + i as u64),
            ],
        );
        instance.insert(
            &"Picture".into(),
            vec![Value::Uid(700 + i as u64), Value::bytes([7, i as u8])],
        );
    }

    let f = program.function("getInstructorInfo").unwrap();
    let mut evaluator = Evaluator::new(&schema);
    let expected = evaluator
        .call(f, &[Value::Int(1)], &mut instance.clone())
        .unwrap()
        .expect("query returns a relation");

    let sql = function_to_sql(f, &Sqlite);
    let mut db = Database::from_instance(&schema, &instance);
    let result = db
        .query(&sql.statements[0], &Params::positional(vec![Value::Int(1)]))
        .unwrap();

    let mut expected_rows = expected.canonical_rows();
    let mut actual_rows = result.rows;
    expected_rows.sort();
    actual_rows.sort();
    assert_eq!(expected_rows, actual_rows);
}

/// A multi-statement sequence (insert then delete then reinsert) keeps the
/// engine and dbir in lockstep across intermediate states.
#[test]
fn update_sequences_stay_in_lockstep() {
    let (schema, program) = motivating();
    let mut dbir_instance = Instance::empty(&schema);
    let mut evaluator = Evaluator::with_uid_counter(&schema, 0);
    let mut db = Database::from_instance(&schema, &dbir_instance);

    let steps: Vec<(&str, Vec<Value>)> = vec![
        (
            "addInstructor",
            vec![Value::Int(1), Value::str("a"), Value::bytes([1])],
        ),
        (
            "addInstructor",
            vec![Value::Int(2), Value::str("b"), Value::bytes([2])],
        ),
        ("deleteInstructor", vec![Value::Int(1)]),
        (
            "addInstructor",
            vec![Value::Int(3), Value::str("c"), Value::bytes([3])],
        ),
    ];
    for (name, args) in steps {
        let f = program.function(name).unwrap();
        let uid_base = evaluator.uid_counter();
        evaluator.call(f, &args, &mut dbir_instance).unwrap();
        let sql = function_to_sql(f, &Sqlite);
        let mut params = args.clone();
        for (i, _) in sql.fresh_ids.iter().enumerate() {
            params.push(Value::Uid(uid_base + i as u64));
        }
        for statement in &sql.statements {
            db.execute_script(statement, &Params::positional(params.clone()))
                .unwrap_or_else(|e| panic!("{name}: {e}\nstatement: {statement}"));
        }
        assert_eq!(
            sorted(&dbir_instance, &schema),
            sorted(&db.to_instance(&schema).unwrap(), &schema),
            "diverged after {name}"
        );
    }
}
