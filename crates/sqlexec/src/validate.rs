//! The migration validator: execute the emitted migration against a
//! [`Backend`] and compare the result with a `dbir`-level prediction.
//!
//! The pipeline is deliberately split so the two sides share as little code
//! as possible:
//!
//! * the *executed* side renders everything to SQL text — source DDL
//!   ([`sqlbridge::schema_to_ddl`]), seed rows
//!   ([`sqlbridge::instance_inserts`]) and the executable migration script
//!   ([`sqlbridge::migration_script`]) — and runs it through a backend;
//! * the *predicted* side evaluates the same [`sqlbridge::MigrationPlan`]
//!   directly over the seeded [`dbir::Instance`] with plain nested-loop
//!   joins ([`predicted_target`]), never touching SQL text.
//!
//! Row-multiset equality of the two target instances therefore exercises
//! the SQL renderer, the tokenizer, the engine (or a real `sqlite3`) and
//! the snapshot path end-to-end. Surrogate-key columns ([`DataType::Id`])
//! are compared up to a bijection: both sides compute the same skolem
//! integers today, but a backend that mints its own keys (e.g. Postgres
//! identity columns) only has to produce *consistently linked* rows, not
//! identical numbers.
//!
//! Seeding is deterministic and join-aware: source columns that can
//! equi-join (same name and compatible type, or linked by a foreign key)
//! are seeded from the same value sequence, so the migration's joins
//! actually match rows and a join against the wrong column shows up as a
//! wrong result instead of an accidentally empty one.

use std::collections::BTreeMap;

use dbir::schema::QualifiedAttr;
use dbir::{DataType, Instance, Schema, TableName, Value};
use migrator::ValueCorrespondence;
use sqlbridge::{
    instance_inserts, migration_plan, render_migration_plan, schema_to_ddl, ColumnFill, Dialect,
    MigrationPlan,
};

use crate::backend::{Backend, BackendError};

/// One per-table discrepancy between the predicted and the executed target
/// instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceDiff {
    /// The table that differs.
    pub table: String,
    /// What differs.
    pub detail: String,
}

impl std::fmt::Display for InstanceDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.table, self.detail)
    }
}

/// Rows seeded per source table when a caller has no reason to pick a
/// different bound (shared by the CLI and the experiments harness so both
/// validate the same instance).
pub const DEFAULT_ROWS_PER_TABLE: usize = 3;

/// The outcome of validating one migration against one backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationOutcome {
    /// `true` when the executed target instance matches the prediction.
    pub ok: bool,
    /// The backend the migration ran on.
    pub backend: String,
    /// The SQL dialect the validated script was rendered in.
    pub dialect: String,
    /// Rows seeded into the source instance.
    pub seeded_rows: usize,
    /// Rows found in the target instance after the migration ran.
    pub migrated_rows: usize,
    /// Per-table discrepancies (empty when `ok`).
    pub diffs: Vec<InstanceDiff>,
    /// Human-readable notes (skipped columns, prediction caveats).
    pub details: Vec<String>,
}

/// Seeds a deterministic source instance with `rows_per_table` rows per
/// table.
///
/// Values are derived from the *join class* of each column (columns that
/// can equi-join share a class, see the module docs) and the row number, so
/// joins match rows and distinct columns receive distinct values. `Id`
/// columns are seeded with integers — that is how surrogate keys exist at
/// the SQL level.
pub fn seed_instance(schema: &Schema, rows_per_table: usize) -> Instance {
    let classes = column_classes(schema);
    let mut instance = Instance::empty(schema);
    for table in schema.tables() {
        for row_index in 0..rows_per_table {
            let mut row = Vec::new();
            for column in &table.columns {
                let attr = QualifiedAttr {
                    table: table.name,
                    attr: column.name.clone(),
                };
                let class = classes.get(&attr).copied().unwrap_or(0);
                row.push(seed_value(column.ty, class, row_index));
            }
            instance.insert(&table.name, row);
        }
    }
    instance
}

fn seed_value(ty: DataType, class: usize, row: usize) -> Value {
    match ty {
        DataType::Int | DataType::Id => Value::Int(((class + 1) * 100 + row + 1) as i64),
        DataType::String => Value::str(format!("s{class}_{row}")),
        DataType::Binary => Value::bytes([(class % 251) as u8 + 1, (row % 251) as u8 + 1]),
        DataType::Bool => Value::Bool(row.is_multiple_of(2)),
    }
}

/// Join classes of the source columns: a union-find over all columns,
/// merging same-named compatible columns and foreign-key endpoints.
fn column_classes(schema: &Schema) -> BTreeMap<QualifiedAttr, usize> {
    let attrs = schema.all_attrs();
    let index: BTreeMap<&QualifiedAttr, usize> =
        attrs.iter().enumerate().map(|(i, a)| (a, i)).collect();
    let mut parent: Vec<usize> = (0..attrs.len()).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    let union = |parent: &mut [usize], a: usize, b: usize| {
        let (ra, rb) = (find(parent, a), find(parent, b));
        if ra != rb {
            let (lo, hi) = (ra.min(rb), ra.max(rb));
            parent[hi] = lo;
        }
    };
    for (i, a) in attrs.iter().enumerate() {
        for (j, b) in attrs.iter().enumerate().skip(i + 1) {
            if a.attr == b.attr {
                let (Some(ta), Some(tb)) = (schema.attr_type(a), schema.attr_type(b)) else {
                    continue;
                };
                if ta.compatible_with(tb) {
                    union(&mut parent, i, j);
                }
            }
        }
    }
    for fk in schema.foreign_keys() {
        if let (Some(&i), Some(&j)) = (index.get(&fk.from), index.get(&fk.to)) {
            union(&mut parent, i, j);
        }
    }
    // Rank classes by their root's first occurrence, for stable small ids.
    let mut rank: BTreeMap<usize, usize> = BTreeMap::new();
    let mut classes = BTreeMap::new();
    for (i, attr) in attrs.iter().enumerate() {
        let root = find(&mut parent, i);
        let next = rank.len();
        let class = *rank.entry(root).or_insert(next);
        classes.insert(attr.clone(), class);
    }
    classes
}

/// Evaluates a [`MigrationPlan`] directly over a source instance with
/// nested-loop joins, predicting the target instance the emitted SQL must
/// produce.
///
/// # Errors
///
/// Fails when the plan references attributes absent from the schemas or a
/// skolem key holds a non-integer value — both indicate a planner bug.
pub fn predicted_target(
    plan: &MigrationPlan,
    source_schema: &Schema,
    target_schema: &Schema,
    source: &Instance,
) -> Result<Instance, String> {
    let mut instance = Instance::empty(target_schema);
    for insert in &plan.inserts {
        let target_table = target_schema
            .table(&insert.target)
            .ok_or_else(|| format!("plan inserts into unknown table `{}`", insert.target))?;

        // Build the joined relation: labels are source qualified attrs.
        let mut labels: Vec<QualifiedAttr> = table_attrs(source_schema, &insert.tables[0])?;
        let mut rows: Vec<Vec<Value>> = source.rows(&insert.tables[0]).to_vec();
        for (table, join) in insert.tables[1..].iter().zip(&insert.joins) {
            let new_labels = table_attrs(source_schema, table)?;
            let condition = match join {
                Some((a, b)) => {
                    // One end is bound in the relation so far, the other in
                    // the incoming table.
                    let (rel_attr, new_attr) = if labels.contains(a) { (a, b) } else { (b, a) };
                    let rel_index = labels
                        .iter()
                        .position(|l| l == rel_attr)
                        .ok_or_else(|| format!("join attribute {rel_attr} not in relation"))?;
                    let new_index = new_labels
                        .iter()
                        .position(|l| l == new_attr)
                        .ok_or_else(|| format!("join attribute {new_attr} not in {table}"))?;
                    Some((rel_index, new_index))
                }
                None => None,
            };
            let table_rows = source.rows(table);
            let mut extended = Vec::new();
            for row in &rows {
                for table_row in table_rows {
                    let matches = match condition {
                        Some((ri, ni)) => sql_eq(&row[ri], &table_row[ni]),
                        None => true,
                    };
                    if matches {
                        let mut combined = row.clone();
                        combined.extend(table_row.iter().copied());
                        extended.push(combined);
                    }
                }
            }
            labels.extend(new_labels);
            rows = extended;
        }

        // Project each joined row into a full-width target tuple.
        let column_count = target_table.columns.len();
        for row in &rows {
            let mut tuple = vec![Value::Null; column_count];
            for (column, fill) in &insert.columns {
                let target_index = target_table
                    .column_index(&column.attr)
                    .ok_or_else(|| format!("plan fills unknown column {column}"))?;
                tuple[target_index] = match fill {
                    ColumnFill::Source(attr) => {
                        let i = labels
                            .iter()
                            .position(|l| l == attr)
                            .ok_or_else(|| format!("plan reads {attr} outside the join"))?;
                        row[i]
                    }
                    ColumnFill::Skolem { key, factor, tag } => {
                        let i = labels
                            .iter()
                            .position(|l| l == key)
                            .ok_or_else(|| format!("skolem key {key} outside the join"))?;
                        let k = match row[i] {
                            Value::Int(n) => n,
                            Value::Uid(u) => i64::try_from(u)
                                .map_err(|_| format!("skolem key {key} overflows"))?,
                            other => {
                                return Err(format!(
                                    "skolem key {key} holds non-integer value {other}"
                                ))
                            }
                        };
                        Value::Int(k * (*factor as i64) + *tag as i64)
                    }
                };
            }
            // Primary-key upsert, matching the engine and dbir semantics.
            push_with_upsert(&mut instance, target_table, tuple);
        }
    }
    Ok(instance)
}

fn push_with_upsert(instance: &mut Instance, table: &dbir::TableDef, tuple: Vec<Value>) {
    if let Some(pk) = table.primary_key_index() {
        let rows = instance.rows_mut(&table.name);
        if let Some(existing) = rows.iter_mut().find(|r| sql_eq(&r[pk], &tuple[pk])) {
            *existing = tuple;
            return;
        }
        rows.push(tuple);
        return;
    }
    instance.insert(&table.name, tuple);
}

fn table_attrs(schema: &Schema, table: &TableName) -> Result<Vec<QualifiedAttr>, String> {
    schema
        .table(table)
        .map(|t| t.qualified_attrs())
        .ok_or_else(|| format!("plan reads unknown table `{table}`"))
}

/// SQL-level equality: surrogate keys are integers, so `Uid` and `Int`
/// compare numerically; `NULL` equals nothing.
fn sql_eq(a: &Value, b: &Value) -> bool {
    if a.is_null() || b.is_null() {
        return false;
    }
    if a == b {
        return true;
    }
    match (a, b) {
        (Value::Uid(u), Value::Int(n)) | (Value::Int(n), Value::Uid(u)) => {
            i64::try_from(*u).map(|u| u == *n).unwrap_or(false)
        }
        _ => false,
    }
}

/// Compares two target instances for row-multiset equality, with
/// [`DataType::Id`] columns compared up to a bijection.
///
/// Both instances are canonicalized: surrogate values are renumbered in the
/// order they are first encountered when traversing tables in schema order
/// and rows in a surrogate-masked sort order, so two instances whose
/// surrogate keys differ only by a consistent renaming canonicalize
/// identically. (Rows that are identical except for their surrogate keys
/// can tie in the masked order and defeat the renumbering; the seeded
/// instances keep rows distinct.) Returns one [`InstanceDiff`] per
/// differing table.
pub fn compare_instances(
    expected: &Instance,
    actual: &Instance,
    schema: &Schema,
) -> Vec<InstanceDiff> {
    // Fast path: literal row-multiset equality (today's backends execute
    // the same skolem arithmetic the predictor computes, so keys usually
    // match exactly). This also sidesteps the canonicalization tie caveat
    // below whenever the instances are simply equal.
    let exactly_equal = schema.tables().iter().all(|table| {
        let mut expected_rows = expected.rows(&table.name).to_vec();
        let mut actual_rows = actual.rows(&table.name).to_vec();
        expected_rows.sort();
        actual_rows.sort();
        expected_rows == actual_rows
    });
    if exactly_equal {
        return Vec::new();
    }
    let expected = canonicalize_surrogates(expected, schema);
    let actual = canonicalize_surrogates(actual, schema);
    let mut diffs = Vec::new();
    for table in schema.tables() {
        let mut expected_rows = expected.rows(&table.name).to_vec();
        let mut actual_rows = actual.rows(&table.name).to_vec();
        expected_rows.sort();
        actual_rows.sort();
        if expected_rows == actual_rows {
            continue;
        }
        let missing: Vec<&Vec<Value>> = expected_rows
            .iter()
            .filter(|r| !actual_rows.contains(r))
            .collect();
        let unexpected: Vec<&Vec<Value>> = actual_rows
            .iter()
            .filter(|r| !expected_rows.contains(r))
            .collect();
        let mut detail = format!(
            "predicted {} row(s), executed migration produced {}",
            expected_rows.len(),
            actual_rows.len()
        );
        for row in missing.iter().take(3) {
            detail.push_str(&format!("; missing {}", render_row(row)));
        }
        for row in unexpected.iter().take(3) {
            detail.push_str(&format!("; unexpected {}", render_row(row)));
        }
        diffs.push(InstanceDiff {
            table: table.name.as_str().to_string(),
            detail,
        });
    }
    diffs
}

fn render_row(row: &[Value]) -> String {
    let fields: Vec<String> = row.iter().map(|v| v.to_string()).collect();
    format!("({})", fields.join(", "))
}

/// Replaces every value stored in a surrogate-key column with a canonical
/// integer assigned by first encounter (see [`compare_instances`]).
fn canonicalize_surrogates(instance: &Instance, schema: &Schema) -> Instance {
    let mut canonical: BTreeMap<Value, i64> = BTreeMap::new();
    let mut result = Instance::empty(schema);
    for table in schema.tables() {
        let id_columns: Vec<usize> = table
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.ty == DataType::Id)
            .map(|(i, _)| i)
            .collect();
        let mut rows = instance.rows(&table.name).to_vec();
        if !id_columns.is_empty() {
            // Sort by the surrogate-masked projection first so the
            // encounter order does not depend on the surrogate values
            // themselves, then renumber.
            rows.sort_by_key(|row| {
                let masked: Vec<Value> = row
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        if id_columns.contains(&i) {
                            Value::Null
                        } else {
                            *v
                        }
                    })
                    .collect();
                masked
            });
            for row in &mut rows {
                for &i in &id_columns {
                    if row[i].is_null() {
                        continue;
                    }
                    let next = canonical.len() as i64;
                    let id = *canonical.entry(row[i]).or_insert(next);
                    row[i] = Value::Int(id);
                }
            }
        }
        for row in rows {
            result.insert(&table.name, row);
        }
    }
    result
}

/// Validates one migration end-to-end against a backend: seed, execute the
/// emitted DDL + seed inserts + migration script — all rendered in the
/// SQLite dialect, which every provided backend executes — snapshot the
/// target tables and compare with the plan's `dbir`-level prediction.
///
/// To validate the script of a *specific* dialect (what the `migrate` CLI
/// printed), use [`validate_migration_dialect`]; the chosen dialect must be
/// one the backend can execute (the in-memory engine accepts all three
/// provided dialects, a real `sqlite3` only the SQLite one).
///
/// # Errors
///
/// Fails when the backend rejects the script or cannot be read back; a
/// *semantic* mismatch is not an error but an outcome with `ok == false`.
pub fn validate_migration(
    source_schema: &Schema,
    target_schema: &Schema,
    phi: &ValueCorrespondence,
    backend: &mut dyn Backend,
    rows_per_table: usize,
) -> Result<ValidationOutcome, BackendError> {
    validate_migration_dialect(
        source_schema,
        target_schema,
        phi,
        backend,
        rows_per_table,
        &sqlbridge::Sqlite,
    )
}

/// [`validate_migration`] with an explicit rendering dialect, so the
/// validated script is the same text the caller emits to the user.
///
/// # Errors
///
/// Fails when the backend rejects the script or cannot be read back; a
/// *semantic* mismatch is not an error but an outcome with `ok == false`.
pub fn validate_migration_dialect(
    source_schema: &Schema,
    target_schema: &Schema,
    phi: &ValueCorrespondence,
    backend: &mut dyn Backend,
    rows_per_table: usize,
    dialect: &dyn Dialect,
) -> Result<ValidationOutcome, BackendError> {
    validate_migration_observed(
        source_schema,
        target_schema,
        phi,
        backend,
        rows_per_table,
        dialect,
        None,
    )
}

/// [`validate_migration_dialect`] with an optional [`obs::PipelineObserver`]
/// that receives stage events while the validation runs: the staged script
/// ([`obs::PipelineEvent::ScriptStaged`]), each executed script section
/// ([`obs::PipelineEvent::BackendStatementExecuted`] for `ddl`, `seed` and
/// `migration`), one [`obs::PipelineEvent::DataMoved`] per executed
/// data-move statement (with the target table's row count after the move —
/// the migration-progress feed the zero-downtime execution story builds
/// on), and the final instance comparison
/// ([`obs::PipelineEvent::ValidationCompared`]).
///
/// Execution is sectioned: source DDL + seeds + migration preamble run as
/// one script, then each data move runs individually, then cleanup. Both
/// backends keep state across [`Backend::execute_script`] calls, so the
/// sectioning is observationally equivalent to the single staged script an
/// unobserved run used to execute — per-move row counts are only computed
/// (via snapshots) when an observer is installed.
///
/// # Errors
///
/// Fails when the backend rejects the script or cannot be read back; a
/// *semantic* mismatch is not an error but an outcome with `ok == false`.
pub fn validate_migration_observed(
    source_schema: &Schema,
    target_schema: &Schema,
    phi: &ValueCorrespondence,
    backend: &mut dyn Backend,
    rows_per_table: usize,
    dialect: &dyn Dialect,
    observer: Option<&dyn obs::PipelineObserver>,
) -> Result<ValidationOutcome, BackendError> {
    let emit = |event: obs::PipelineEvent| {
        if let Some(observer) = observer {
            observer.pipeline_event(&event);
        }
    };
    let seed = seed_instance(source_schema, rows_per_table);

    // Stage the setup section: source DDL, seed rows and the migration
    // preamble (staging renames + target DDL) run as one script; the data
    // moves then execute statement-by-statement so an observer can follow
    // migration progress per target table.
    let mut setup = String::new();
    let ddl = schema_to_ddl(source_schema, dialect);
    let ddl_statements = ddl.matches(';').count();
    setup.push_str(&ddl);
    let inserts = instance_inserts(source_schema, &seed, dialect);
    let seed_statements = inserts.len();
    for statement in inserts {
        setup.push_str(&statement);
        setup.push('\n');
    }
    let plan = migration_plan(source_schema, target_schema, phi);
    let migration = render_migration_plan(&plan, target_schema, dialect);
    let migration_statements =
        migration.preamble.len() + migration.statements.len() + migration.cleanup.len();
    for statement in &migration.preamble {
        setup.push_str(statement);
        setup.push('\n');
    }
    emit(obs::PipelineEvent::ScriptStaged {
        backend: backend.name().to_string(),
        seeded_rows: rows_per_table,
        statements: migration_statements,
    });

    backend.execute_script(&setup)?;
    for (phase, statements) in [("ddl", ddl_statements), ("seed", seed_statements)] {
        emit(obs::PipelineEvent::BackendStatementExecuted {
            backend: backend.name().to_string(),
            phase: phase.to_string(),
            statements,
        });
    }
    let total_moves = migration.statements.len();
    for (index, statement) in migration.statements.iter().enumerate() {
        backend.execute_script(statement)?;
        if observer.is_some() {
            // Progress reporting only: the row count needs a snapshot, so
            // it is skipped entirely on unobserved runs to keep the
            // benchmark-checked hot path untouched.
            let target = &plan.inserts[index].target;
            let rows = backend.snapshot(target_schema)?.rows(target).len();
            emit(obs::PipelineEvent::DataMoved {
                backend: backend.name().to_string(),
                table: target.to_string(),
                statement: index + 1,
                statements: total_moves,
                rows,
            });
        }
    }
    if !migration.cleanup.is_empty() {
        let cleanup = migration.cleanup.join("\n");
        backend.execute_script(&cleanup)?;
    }
    emit(obs::PipelineEvent::BackendStatementExecuted {
        backend: backend.name().to_string(),
        phase: "migration".to_string(),
        statements: migration_statements,
    });
    let actual = backend.snapshot(target_schema)?;

    let mut details = plan.notes.clone();
    let expected = match predicted_target(&plan, source_schema, target_schema, &seed) {
        Ok(expected) => expected,
        Err(message) => {
            emit(obs::PipelineEvent::ValidationCompared {
                backend: backend.name().to_string(),
                ok: false,
                tables_compared: target_schema.tables().len(),
                diffs: 0,
            });
            return Ok(ValidationOutcome {
                ok: false,
                backend: backend.name().to_string(),
                dialect: dialect.name().to_string(),
                seeded_rows: seed.total_rows(),
                migrated_rows: actual.total_rows(),
                diffs: Vec::new(),
                details: vec![format!("prediction failed: {message}")],
            });
        }
    };
    let diffs = compare_instances(&expected, &actual, target_schema);
    let ok = diffs.is_empty();
    if ok {
        details.push(format!(
            "{} target row(s) match the dbir prediction on backend `{}`",
            actual.total_rows(),
            backend.name()
        ));
    }
    emit(obs::PipelineEvent::ValidationCompared {
        backend: backend.name().to_string(),
        ok,
        tables_compared: target_schema.tables().len(),
        diffs: diffs.len(),
    });
    Ok(ValidationOutcome {
        ok,
        backend: backend.name().to_string(),
        dialect: dialect.name().to_string(),
        seeded_rows: seed.total_rows(),
        migrated_rows: actual.total_rows(),
        diffs,
        details,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemoryBackend;
    use sqlbridge::{migration_script, render_migration_script};

    fn qa(t: &str, a: &str) -> QualifiedAttr {
        QualifiedAttr::new(t, a)
    }

    #[test]
    fn seeds_share_values_across_join_classes() {
        let mut schema = Schema::parse(
            "Person(pid: int, name: string)\n\
             Address(pid: int, city: string)\n\
             Photo(ref: int, blob: binary)",
        )
        .unwrap();
        schema
            .add_foreign_key(qa("Photo", "ref"), qa("Person", "pid"))
            .unwrap();
        let instance = seed_instance(&schema, 2);
        let person = instance.rows(&"Person".into());
        let address = instance.rows(&"Address".into());
        let photo = instance.rows(&"Photo".into());
        // Same-named `pid` columns and the fk-linked `ref` column share the
        // same value sequence, so joins match row-for-row.
        assert_eq!(person[0][0], address[0][0]);
        assert_eq!(person[1][0], address[1][0]);
        assert_eq!(person[0][0], photo[0][0]);
        // Unrelated columns draw from distinct sequences.
        assert_ne!(person[0][1], address[0][1]);
    }

    #[test]
    fn surrogate_bijection_accepts_renamed_keys_and_rejects_broken_links() {
        let schema = Schema::parse(
            "Account(name: string, addr: id)\n\
             Addr(addr: id, city: string)",
        )
        .unwrap();
        let mut expected = Instance::empty(&schema);
        expected.insert(&"Account".into(), vec![Value::str("a"), Value::Int(10)]);
        expected.insert(&"Account".into(), vec![Value::str("b"), Value::Int(20)]);
        expected.insert(&"Addr".into(), vec![Value::Int(10), Value::str("x")]);
        expected.insert(&"Addr".into(), vec![Value::Int(20), Value::str("y")]);

        // Same structure, consistently renamed surrogates: accepted.
        let mut renamed = Instance::empty(&schema);
        renamed.insert(&"Account".into(), vec![Value::str("a"), Value::Int(777)]);
        renamed.insert(&"Account".into(), vec![Value::str("b"), Value::Int(888)]);
        renamed.insert(&"Addr".into(), vec![Value::Int(777), Value::str("x")]);
        renamed.insert(&"Addr".into(), vec![Value::Int(888), Value::str("y")]);
        assert!(compare_instances(&expected, &renamed, &schema).is_empty());

        // Crossed links: `a` now points at `y` — rejected.
        let mut crossed = Instance::empty(&schema);
        crossed.insert(&"Account".into(), vec![Value::str("a"), Value::Int(888)]);
        crossed.insert(&"Account".into(), vec![Value::str("b"), Value::Int(777)]);
        crossed.insert(&"Addr".into(), vec![Value::Int(777), Value::str("x")]);
        crossed.insert(&"Addr".into(), vec![Value::Int(888), Value::str("y")]);
        assert!(!compare_instances(&expected, &crossed, &schema).is_empty());
    }

    #[test]
    fn validates_a_surrogate_key_split_on_the_memory_backend() {
        let source = Schema::parse("U(uid: int, uname: string, grp: string)").unwrap();
        let mut target = Schema::parse(
            "Account(uid: int, grp_id: id, uname: string)\n\
             Grp(grp_id: id, gname: string)",
        )
        .unwrap();
        target
            .add_foreign_key(qa("Account", "grp_id"), qa("Grp", "grp_id"))
            .unwrap();
        let mut phi = ValueCorrespondence::new();
        phi.add(qa("U", "uid"), qa("Account", "uid"));
        phi.add(qa("U", "uname"), qa("Account", "uname"));
        phi.add(qa("U", "grp"), qa("Grp", "gname"));

        let outcome =
            validate_migration(&source, &target, &phi, &mut MemoryBackend::new(), 3).unwrap();
        assert!(outcome.ok, "{:#?}", outcome);
        assert_eq!(outcome.seeded_rows, 3);
        assert_eq!(outcome.migrated_rows, 6);
    }

    #[test]
    fn validates_colliding_table_names_through_staging() {
        // Source and target both have `Users`; the script must stage the
        // source under `legacy_Users` and still validate.
        let source = Schema::parse("Users(uid: int, nick: string)").unwrap();
        let target = Schema::parse("Users(uid: int, handle: string)").unwrap();
        let mut phi = ValueCorrespondence::new();
        phi.add(qa("Users", "uid"), qa("Users", "uid"));
        phi.add(qa("Users", "nick"), qa("Users", "handle"));

        let mut backend = MemoryBackend::new();
        let outcome = validate_migration(&source, &target, &phi, &mut backend, 4).unwrap();
        assert!(outcome.ok, "{:#?}", outcome);
        // Cleanup dropped the staged table; only the target table remains.
        assert!(backend.database().table("legacy_Users").is_none());
        assert_eq!(backend.database().tables().len(), 1);
    }

    /// Review regression: `--dialect X --validate` must validate the
    /// dialect-X script. The memory engine executes every provided
    /// dialect rendering — including MySQL's `AUTO_INCREMENT` surrogate
    /// keys, backtick quoting and bare `?` placeholders.
    #[test]
    fn every_dialect_validates_on_the_memory_backend() {
        let source =
            Schema::parse("U(uid: int, uname: string, pic: binary, active: bool, grp: string)")
                .unwrap();
        let mut target = Schema::parse(
            "Account(uid: int, grp_id: id, uname: string, pic: binary, active: bool)\n\
             Grp(grp_id: id, gname: string)",
        )
        .unwrap();
        target
            .add_foreign_key(qa("Account", "grp_id"), qa("Grp", "grp_id"))
            .unwrap();
        let mut phi = ValueCorrespondence::new();
        phi.add(qa("U", "uid"), qa("Account", "uid"));
        phi.add(qa("U", "uname"), qa("Account", "uname"));
        phi.add(qa("U", "pic"), qa("Account", "pic"));
        phi.add(qa("U", "active"), qa("Account", "active"));
        phi.add(qa("U", "grp"), qa("Grp", "gname"));

        for dialect in [
            &sqlbridge::Ansi as &dyn Dialect,
            &sqlbridge::Sqlite,
            &sqlbridge::Postgres,
            &sqlbridge::MySql,
        ] {
            let outcome = validate_migration_dialect(
                &source,
                &target,
                &phi,
                &mut MemoryBackend::new(),
                3,
                dialect,
            )
            .unwrap_or_else(|e| panic!("{} dialect failed to execute: {e}", dialect.name()));
            assert!(outcome.ok, "{} dialect: {:#?}", dialect.name(), outcome);
            assert_eq!(outcome.dialect, dialect.name());
        }
    }

    #[test]
    fn a_tampered_migration_fails_validation() {
        // Render the migration script but sabotage the data move the way
        // the pre-PR1 emitter would have (reading the wrong column), and
        // check the validator notices.
        let source = Schema::parse("A(x: int, y: int)").unwrap();
        let target = Schema::parse("B(x: int, y: int)").unwrap();
        let mut phi = ValueCorrespondence::new();
        phi.add(qa("A", "x"), qa("B", "x"));
        phi.add(qa("A", "y"), qa("B", "y"));

        let dialect = sqlbridge::Sqlite;
        let seed = seed_instance(&source, 3);
        let mut script = String::new();
        script.push_str(&schema_to_ddl(&source, &dialect));
        for statement in instance_inserts(&source, &seed, &dialect) {
            script.push_str(&statement);
            script.push('\n');
        }
        let migration = migration_script(&source, &target, &phi, &dialect);
        let sabotaged = render_migration_script(&migration, &dialect)
            .replace("SELECT A.x, A.y", "SELECT A.y, A.x");

        let mut backend = MemoryBackend::new();
        backend.execute_script(&script).unwrap();
        backend.execute_script(&sabotaged).unwrap();
        let actual = backend.snapshot(&target).unwrap();
        let plan = migration_plan(&source, &target, &phi);
        let expected = predicted_target(&plan, &source, &target, &seed).unwrap();
        let diffs = compare_instances(&expected, &actual, &target);
        assert!(!diffs.is_empty(), "swapped columns must not validate");
        assert!(diffs[0].detail.contains("missing"), "{}", diffs[0].detail);
    }

    #[test]
    fn sqlite3_backend_agrees_with_memory_when_available() {
        if crate::backend::Sqlite3Backend::detect().is_none() {
            eprintln!("sqlite3 binary not found; skipping");
            return;
        }
        let source = Schema::parse("U(uid: int, uname: string, grp: string)").unwrap();
        let mut target = Schema::parse(
            "Account(uid: int, grp_id: id, uname: string)\n\
             Grp(grp_id: id, gname: string)",
        )
        .unwrap();
        target
            .add_foreign_key(qa("Account", "grp_id"), qa("Grp", "grp_id"))
            .unwrap();
        let mut phi = ValueCorrespondence::new();
        phi.add(qa("U", "uid"), qa("Account", "uid"));
        phi.add(qa("U", "uname"), qa("Account", "uname"));
        phi.add(qa("U", "grp"), qa("Grp", "gname"));

        let mut backend = crate::backend::Sqlite3Backend::create().unwrap();
        let outcome = validate_migration(&source, &target, &phi, &mut backend, 3).unwrap();
        assert!(outcome.ok, "{:#?}", outcome);
        assert_eq!(outcome.backend, "sqlite3");
    }
}
