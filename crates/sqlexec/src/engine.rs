//! The in-memory SQL engine: a [`Database`] of typed tables plus a parser
//! and executor for the SQL statement subset the Migrator pipeline emits.
//!
//! The engine exists to *execute what we emit*, so its surface is exactly
//! the emitted subset and nothing more:
//!
//! * `CREATE [TEMPORARY] TABLE` — column definitions with `PRIMARY KEY`,
//!   `NOT NULL`, `UNIQUE`, `DEFAULT`, `REFERENCES` and `GENERATED ... AS
//!   IDENTITY` constraints (constraints other than the primary key are
//!   accepted and ignored: the engine checks data movement, not integrity),
//!   and `CREATE TEMPORARY TABLE ... AS SELECT` for the snapshot tables the
//!   multi-table `DELETE` lowering produces;
//! * `DROP TABLE`, `ALTER TABLE ... RENAME TO` (migration staging);
//! * `INSERT` from `VALUES` tuples or from a `SELECT` (the data moves);
//! * `UPDATE ... SET ... WHERE` and `DELETE FROM ... WHERE`, including the
//!   correlated `EXISTS` subqueries the update/delete lowerings emit;
//! * `SELECT` with inner `JOIN ... ON` chains, comma cross joins, `WHERE`
//!   predicates with `AND`/`OR`/`NOT`, comparisons, arithmetic (`*`, `+`,
//!   `-`, `/`), `IN (SELECT ...)` and `[NOT] EXISTS (SELECT ...)`
//!   subqueries (correlated subqueries see the enclosing row), `DISTINCT`,
//!   and `IS [NOT] NULL`;
//! * `BEGIN` / `COMMIT` (accepted as no-ops: a script is applied to the
//!   in-memory database as a whole) and the named (`:p`), numbered (`?N`)
//!   and dollar (`$N`) placeholder styles via [`Params`].
//!
//! Semantics deliberately mirror [`dbir::eval`] where SQL leaves latitude:
//! inserting a row whose declared primary key equals an existing row's
//! *replaces* that row (the upsert semantics of [`dbir::TableDef`]), and
//! integer literals coerce into `BOOLEAN` columns (the SQLite dialect
//! renders booleans as `1`/`0`). Everything else is textbook SQL inner-join
//! semantics over multisets; `NULL` compares as unknown (filtered out) and
//! propagates through arithmetic.
//!
//! A [`Database`] converts losslessly to and from [`dbir::Instance`] via
//! [`Database::from_instance`] / [`Database::to_instance`], which is what
//! lets the migration validator compare executed SQL against dbir-predicted
//! instances.

use std::collections::BTreeMap;
use std::fmt;

use dbir::{DataType, Instance, Schema, Value};
use sqlbridge::token::{tokenize, Span, SqlError, Token, TokenKind};

/// One column of an engine table: its name and, when the table was created
/// from DDL, its declared type (`CREATE TABLE ... AS SELECT` columns are
/// untyped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name as written in the DDL.
    pub name: String,
    /// Declared type, if any.
    pub ty: Option<DataType>,
}

/// One table of the in-memory database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table name.
    pub name: String,
    /// Ordered columns.
    pub columns: Vec<Column>,
    /// Index of the declared primary-key column, if any (upsert semantics,
    /// matching [`dbir::TableDef`]).
    pub primary_key: Option<usize>,
    /// `true` for `CREATE TEMPORARY TABLE` tables.
    pub temporary: bool,
    /// The rows (a multiset; order is insertion order).
    pub rows: Vec<Vec<Value>>,
}

impl Table {
    fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Inserts a row, honouring primary-key upsert semantics.
    fn push_row(&mut self, row: Vec<Value>) {
        if let Some(pk) = self.primary_key {
            if let Some(existing) = self
                .rows
                .iter_mut()
                .find(|r| values_eq(&r[pk], &row[pk]) == Some(true))
            {
                *existing = row;
                return;
            }
        }
        self.rows.push(row);
    }
}

/// The result of a top-level `SELECT`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResult {
    /// Output column names (aliases where given).
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Vec<Value>>,
}

/// Parameter bindings for placeholder-carrying SQL.
#[derive(Debug, Clone, Default)]
pub struct Params {
    named: BTreeMap<String, Value>,
    positional: Vec<Value>,
}

impl Params {
    /// No bindings (scripts without placeholders).
    pub fn none() -> Params {
        Params::default()
    }

    /// Positional bindings for `?N` / `$N` placeholders (1-based in SQL).
    pub fn positional(values: Vec<Value>) -> Params {
        Params {
            named: BTreeMap::new(),
            positional: values,
        }
    }

    /// Adds a named binding for `:name` placeholders.
    pub fn with_named(mut self, name: impl Into<String>, value: Value) -> Params {
        self.named.insert(name.into(), value);
        self
    }
}

/// An in-memory SQL database.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Database {
    tables: Vec<Table>,
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for table in &self.tables {
            writeln!(f, "{}: {} row(s)", table.name, table.rows.len())?;
        }
        Ok(())
    }
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// The tables currently present, in creation order.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Looks up a table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.name == name)
    }

    fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.iter_mut().find(|t| t.name == name)
    }

    /// Builds a database holding `instance` under `schema` (every schema
    /// table becomes a typed engine table).
    pub fn from_instance(schema: &Schema, instance: &Instance) -> Database {
        let mut db = Database::new();
        for table in schema.tables() {
            db.tables.push(Table {
                name: table.name.as_str().to_string(),
                columns: table
                    .columns
                    .iter()
                    .map(|c| Column {
                        name: c.name.as_str().to_string(),
                        ty: Some(c.ty),
                    })
                    .collect(),
                primary_key: table.primary_key_index(),
                temporary: false,
                rows: instance.rows(&table.name).to_vec(),
            });
        }
        db
    }

    /// Reads the tables of `schema` back out as a [`dbir::Instance`].
    ///
    /// # Errors
    ///
    /// Fails if a schema table is missing from the database or its columns
    /// do not match the schema (name or arity) — after a migration script
    /// ran, the database must hold exactly the target schema's shape.
    pub fn to_instance(&self, schema: &Schema) -> Result<Instance, String> {
        let mut instance = Instance::empty(schema);
        for table_def in schema.tables() {
            let Some(table) = self.table(table_def.name.as_str()) else {
                return Err(format!("table `{}` does not exist", table_def.name));
            };
            let expected: Vec<&str> = table_def.columns.iter().map(|c| c.name.as_str()).collect();
            let actual: Vec<&str> = table.columns.iter().map(|c| c.name.as_str()).collect();
            if expected != actual {
                return Err(format!(
                    "table `{}` has columns {actual:?}, schema expects {expected:?}",
                    table_def.name
                ));
            }
            // Wholesale replacement instead of per-row inserts: one table
            // allocation, and no per-row COW gate probes on the shared-rows
            // instance representation.
            instance.set_rows(&table_def.name, table.rows.clone());
        }
        Ok(instance)
    }

    /// Parses and executes a SQL script (any number of `;`-separated
    /// statements), returning the result of every top-level `SELECT`.
    ///
    /// The whole script is parsed before anything executes, so a syntax
    /// error never leaves the database half-updated. Execution stops at the
    /// first runtime error.
    ///
    /// # Errors
    ///
    /// Returns a [`SqlError`] carrying the source span of the offending
    /// construct, for both parse and execution errors.
    pub fn execute_script(
        &mut self,
        sql: &str,
        params: &Params,
    ) -> Result<Vec<QueryResult>, SqlError> {
        let statements = parse_script(sql)?;
        let mut results = Vec::new();
        for statement in &statements {
            if let Some(result) = self.execute(statement, sql, params)? {
                results.push(result);
            }
        }
        Ok(results)
    }

    fn execute(
        &mut self,
        statement: &Stmt,
        source: &str,
        params: &Params,
    ) -> Result<Option<QueryResult>, SqlError> {
        let err = |message: String, span: Span| SqlError::new(message, span, source);
        match statement {
            Stmt::TxnNoop => Ok(None),
            Stmt::CreateTable {
                table,
                columns,
                primary_key,
                temporary,
            } => {
                if self.table(&table.name).is_some() {
                    return Err(err(
                        format!("table `{}` already exists", table.name),
                        table.span,
                    ));
                }
                let primary_key = match primary_key {
                    Some((name, span)) => Some(
                        columns
                            .iter()
                            .position(|c| &c.name == name)
                            .ok_or_else(|| {
                                err(
                                    format!(
                                        "primary key `{name}` is not a column of `{}`",
                                        table.name
                                    ),
                                    *span,
                                )
                            })?,
                    ),
                    None => None,
                };
                self.tables.push(Table {
                    name: table.name.clone(),
                    columns: columns.clone(),
                    primary_key,
                    temporary: *temporary,
                    rows: Vec::new(),
                });
                Ok(None)
            }
            Stmt::CreateTableAs {
                table,
                temporary,
                select,
            } => {
                if self.table(&table.name).is_some() {
                    return Err(err(
                        format!("table `{}` already exists", table.name),
                        table.span,
                    ));
                }
                let result = self.eval_select(select, &Env::default(), source, params)?;
                let mut seen = BTreeMap::new();
                for name in &result.columns {
                    if seen.insert(name.clone(), ()).is_some() {
                        return Err(err(
                            format!("duplicate column `{name}` in CREATE TABLE AS SELECT"),
                            table.span,
                        ));
                    }
                }
                self.tables.push(Table {
                    name: table.name.clone(),
                    columns: result
                        .columns
                        .into_iter()
                        .map(|name| Column { name, ty: None })
                        .collect(),
                    primary_key: None,
                    temporary: *temporary,
                    rows: result.rows,
                });
                Ok(None)
            }
            Stmt::DropTable(table) => {
                let Some(position) = self.tables.iter().position(|t| t.name == table.name) else {
                    return Err(err(
                        format!("table `{}` does not exist", table.name),
                        table.span,
                    ));
                };
                self.tables.remove(position);
                Ok(None)
            }
            Stmt::AlterRename { table, to } => {
                if self.table(to).is_some() {
                    return Err(err(format!("table `{to}` already exists"), table.span));
                }
                let Some(t) = self.table_mut(&table.name) else {
                    return Err(err(
                        format!("table `{}` does not exist", table.name),
                        table.span,
                    ));
                };
                t.name = to.clone();
                Ok(None)
            }
            Stmt::Insert {
                table,
                columns,
                source: insert_source,
            } => {
                // Materialize the incoming rows first: `INSERT INTO t
                // SELECT ... FROM t` must read the pre-insert state.
                let incoming: Vec<Vec<Value>> = match insert_source {
                    InsertSource::Values(tuples) => {
                        let mut rows = Vec::new();
                        for tuple in tuples {
                            let mut row = Vec::new();
                            for expr in tuple {
                                row.push(self.eval_expr(expr, &Env::default(), source, params)?);
                            }
                            rows.push(row);
                        }
                        rows
                    }
                    InsertSource::Select(select) => {
                        self.eval_select(select, &Env::default(), source, params)?
                            .rows
                    }
                };
                let Some(t) = self.table(&table.name) else {
                    return Err(err(
                        format!("table `{}` does not exist", table.name),
                        table.span,
                    ));
                };
                let mut indices = Vec::new();
                for column in columns {
                    let Some(i) = t.column_index(column) else {
                        return Err(err(
                            format!("column `{column}` is not a column of `{}`", table.name),
                            table.span,
                        ));
                    };
                    indices.push(i);
                }
                let width = t.columns.len();
                let types: Vec<Option<DataType>> = t.columns.iter().map(|c| c.ty).collect();
                let mut staged = Vec::new();
                for incoming_row in incoming {
                    if incoming_row.len() != indices.len() {
                        return Err(err(
                            format!(
                                "INSERT provides {} value(s) for {} column(s)",
                                incoming_row.len(),
                                indices.len()
                            ),
                            table.span,
                        ));
                    }
                    let mut row = vec![Value::Null; width];
                    for (&i, value) in indices.iter().zip(incoming_row) {
                        row[i] = coerce(value, types[i]);
                    }
                    staged.push(row);
                }
                let t = self.table_mut(&table.name).expect("checked above");
                for row in staged {
                    t.push_row(row);
                }
                Ok(None)
            }
            Stmt::Update {
                table,
                sets,
                filter,
            } => {
                let Some(t) = self.table(&table.name) else {
                    return Err(err(
                        format!("table `{}` does not exist", table.name),
                        table.span,
                    ));
                };
                let labels = table_labels(t, &table.name);
                let mut set_indices = Vec::new();
                for (column, _) in sets {
                    let Some(i) = t.column_index(column) else {
                        return Err(err(
                            format!("column `{column}` is not a column of `{}`", table.name),
                            table.span,
                        ));
                    };
                    set_indices.push(i);
                }
                let types: Vec<Option<DataType>> = t.columns.iter().map(|c| c.ty).collect();
                // Decide matches and compute replacement values against the
                // pre-update state, then apply.
                let mut updates: Vec<(usize, Vec<Value>)> = Vec::new();
                for (row_index, row) in t.rows.iter().enumerate() {
                    let env = Env::default().with(&labels, row);
                    if !self.filter_accepts(filter, &env, source, params)? {
                        continue;
                    }
                    let mut new_values = Vec::new();
                    for (set_index, (_, expr)) in set_indices.iter().zip(sets) {
                        let value = self.eval_expr(expr, &env, source, params)?;
                        new_values.push(coerce(value, types[*set_index]));
                    }
                    updates.push((row_index, new_values));
                }
                let t = self.table_mut(&table.name).expect("checked above");
                for (row_index, new_values) in updates {
                    for (&set_index, value) in set_indices.iter().zip(new_values) {
                        t.rows[row_index][set_index] = value;
                    }
                }
                Ok(None)
            }
            Stmt::Delete { table, filter } => {
                let Some(t) = self.table(&table.name) else {
                    return Err(err(
                        format!("table `{}` does not exist", table.name),
                        table.span,
                    ));
                };
                let labels = table_labels(t, &table.name);
                let mut keep = Vec::new();
                for row in &t.rows {
                    let env = Env::default().with(&labels, row);
                    keep.push(!self.filter_accepts(filter, &env, source, params)?);
                }
                let t = self.table_mut(&table.name).expect("checked above");
                let mut keep = keep.into_iter();
                t.rows.retain(|_| keep.next().expect("one flag per row"));
                Ok(None)
            }
            Stmt::Select(select) => Ok(Some(self.eval_select(
                select,
                &Env::default(),
                source,
                params,
            )?)),
        }
    }

    fn filter_accepts(
        &self,
        filter: &Option<Expr>,
        env: &Env<'_>,
        source: &str,
        params: &Params,
    ) -> Result<bool, SqlError> {
        match filter {
            None => Ok(true),
            Some(expr) => {
                let value = self.eval_expr(expr, env, source, params)?;
                Ok(truthy(&value))
            }
        }
    }

    fn eval_select(
        &self,
        select: &Select,
        outer: &Env<'_>,
        source: &str,
        params: &Params,
    ) -> Result<QueryResult, SqlError> {
        // Build the FROM relation: start at the first table, then extend by
        // each joined table, applying its ON condition as soon as its
        // columns are bound (inner-join semantics).
        let mut labels: Vec<ColLabel> = Vec::new();
        let mut rows: Vec<Vec<Value>> = vec![Vec::new()];
        for item in &select.from {
            let Some(table) = self.table(&item.table.name) else {
                return Err(SqlError::new(
                    format!("table `{}` does not exist", item.table.name),
                    item.table.span,
                    source,
                ));
            };
            labels.extend(table_labels(table, &item.table.name));
            let mut extended = Vec::new();
            for row in &rows {
                for table_row in &table.rows {
                    let mut combined = row.clone();
                    combined.extend(table_row.iter().copied());
                    if let Some(on) = &item.on {
                        let env = outer.with(&labels, &combined);
                        let value = self.eval_expr(on, &env, source, params)?;
                        if !truthy(&value) {
                            continue;
                        }
                    }
                    extended.push(combined);
                }
            }
            rows = extended;
        }

        // Static column check: resolve every column reference of this
        // select (not descending into subqueries, which check themselves
        // when they run) against the FROM labels and the enclosing scopes,
        // so an unknown column errors even when no row survives to
        // evaluate it.
        {
            let empty: Vec<Value> = vec![Value::Null; labels.len()];
            let env = outer.with(&labels, &empty);
            let mut refs = Vec::new();
            for item in &select.from {
                if let Some(on) = &item.on {
                    collect_column_refs(on, &mut refs);
                }
            }
            if let Some(filter) = &select.filter {
                collect_column_refs(filter, &mut refs);
            }
            for item in &select.items {
                if let SelectItem::Expr { expr, .. } = item {
                    collect_column_refs(expr, &mut refs);
                }
            }
            for (qualifier, name, span) in refs {
                if !env.resolvable(qualifier.as_deref(), &name) {
                    let shown = match &qualifier {
                        Some(q) => format!("{q}.{name}"),
                        None => name.clone(),
                    };
                    return Err(SqlError::new(
                        format!("unknown column `{shown}`"),
                        span,
                        source,
                    ));
                }
            }
        }

        // WHERE.
        let mut filtered = Vec::new();
        for row in rows {
            let env = outer.with(&labels, &row);
            if self.filter_accepts(&select.filter, &env, source, params)? {
                filtered.push(row);
            }
        }

        // Projection.
        let mut columns = Vec::new();
        for (i, item) in select.items.iter().enumerate() {
            match item {
                SelectItem::Star => {
                    columns.extend(labels.iter().map(|l| l.name.clone()));
                }
                SelectItem::Expr { expr, alias } => columns.push(match alias {
                    Some(alias) => alias.clone(),
                    None => match expr {
                        Expr::Column { name, .. } => name.clone(),
                        _ => format!("c{i}"),
                    },
                }),
            }
        }
        let mut projected = Vec::new();
        for row in &filtered {
            let env = outer.with(&labels, row);
            let mut out = Vec::new();
            for item in &select.items {
                match item {
                    SelectItem::Star => out.extend(row.iter().copied()),
                    SelectItem::Expr { expr, .. } => {
                        out.push(self.eval_expr(expr, &env, source, params)?)
                    }
                }
            }
            projected.push(out);
        }

        if select.distinct {
            let mut seen: Vec<Vec<Value>> = Vec::new();
            for row in projected {
                if !seen.contains(&row) {
                    seen.push(row);
                }
            }
            projected = seen;
        }

        Ok(QueryResult {
            columns,
            rows: projected,
        })
    }

    fn eval_expr(
        &self,
        expr: &Expr,
        env: &Env<'_>,
        source: &str,
        params: &Params,
    ) -> Result<Value, SqlError> {
        match expr {
            Expr::Literal(value) => Ok(*value),
            Expr::Column {
                qualifier,
                name,
                span,
            } => env
                .resolve(qualifier.as_deref(), name)
                .map_err(|message| SqlError::new(message, *span, source)),
            Expr::Param { key, span } => match key {
                ParamKey::Named(name) => params.named.get(name).copied().ok_or_else(|| {
                    SqlError::new(format!("unbound parameter `:{name}`"), *span, source)
                }),
                ParamKey::Indexed(index) => params
                    .positional
                    .get(index.wrapping_sub(1))
                    .copied()
                    .ok_or_else(|| {
                        SqlError::new(format!("unbound parameter `?{index}`"), *span, source)
                    }),
            },
            Expr::Unary { op, expr, span } => {
                let value = self.eval_expr(expr, env, source, params)?;
                match op {
                    UnOp::Neg => match numeric(&value) {
                        Some(n) => Ok(Value::Int(-n)),
                        None if value.is_null() => Ok(Value::Null),
                        None => Err(SqlError::new(
                            format!("cannot negate {value}"),
                            *span,
                            source,
                        )),
                    },
                    // SQL 3-valued logic: NOT NULL is NULL (unknown stays
                    // unknown), matching real SQLite — a row excluded by
                    // `x = 5` must also be excluded by `NOT (x = 5)` when
                    // `x` is NULL.
                    UnOp::Not => Ok(match truth(&value) {
                        Some(b) => Value::Bool(!b),
                        None => Value::Null,
                    }),
                }
            }
            Expr::Binary { op, lhs, rhs, span } => {
                // Short-circuit the logical operators, with Kleene 3-valued
                // semantics: FALSE dominates AND, TRUE dominates OR, and
                // unknown (NULL) propagates otherwise.
                match op {
                    BinOp::And => {
                        let l = truth(&self.eval_expr(lhs, env, source, params)?);
                        if l == Some(false) {
                            return Ok(Value::Bool(false));
                        }
                        let r = truth(&self.eval_expr(rhs, env, source, params)?);
                        return Ok(match (l, r) {
                            (_, Some(false)) => Value::Bool(false),
                            (Some(true), Some(true)) => Value::Bool(true),
                            _ => Value::Null,
                        });
                    }
                    BinOp::Or => {
                        let l = truth(&self.eval_expr(lhs, env, source, params)?);
                        if l == Some(true) {
                            return Ok(Value::Bool(true));
                        }
                        let r = truth(&self.eval_expr(rhs, env, source, params)?);
                        return Ok(match (l, r) {
                            (_, Some(true)) => Value::Bool(true),
                            (Some(false), Some(false)) => Value::Bool(false),
                            _ => Value::Null,
                        });
                    }
                    _ => {}
                }
                let l = self.eval_expr(lhs, env, source, params)?;
                let r = self.eval_expr(rhs, env, source, params)?;
                match op {
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                        if l.is_null() || r.is_null() {
                            return Ok(Value::Null);
                        }
                        let (Some(a), Some(b)) = (numeric(&l), numeric(&r)) else {
                            return Err(SqlError::new(
                                format!("arithmetic on non-numeric values {l} and {r}"),
                                *span,
                                source,
                            ));
                        };
                        let result = match op {
                            BinOp::Add => a.checked_add(b),
                            BinOp::Sub => a.checked_sub(b),
                            BinOp::Mul => a.checked_mul(b),
                            BinOp::Div => {
                                if b == 0 {
                                    return Ok(Value::Null);
                                }
                                a.checked_div(b)
                            }
                            _ => unreachable!(),
                        };
                        match result {
                            Some(n) => Ok(Value::Int(n)),
                            None => Err(SqlError::new(
                                "integer overflow in arithmetic".to_string(),
                                *span,
                                source,
                            )),
                        }
                    }
                    BinOp::Eq | BinOp::Ne => match values_eq(&l, &r) {
                        Some(eq) => Ok(Value::Bool(if *op == BinOp::Eq { eq } else { !eq })),
                        None => Ok(Value::Null),
                    },
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => match values_cmp(&l, &r) {
                        ValueOrder::Unknown => Ok(Value::Null),
                        ValueOrder::Incomparable => Err(SqlError::new(
                            format!("cannot order {l} against {r}"),
                            *span,
                            source,
                        )),
                        ValueOrder::Ordering(ordering) => Ok(Value::Bool(match op {
                            BinOp::Lt => ordering.is_lt(),
                            BinOp::Le => ordering.is_le(),
                            BinOp::Gt => ordering.is_gt(),
                            BinOp::Ge => ordering.is_ge(),
                            _ => unreachable!(),
                        })),
                    },
                }
            }
            Expr::IsNull { expr, negated } => {
                let value = self.eval_expr(expr, env, source, params)?;
                Ok(Value::Bool(value.is_null() != *negated))
            }
            Expr::In {
                needle,
                select,
                negated,
                span,
            } => {
                let needle = self.eval_expr(needle, env, source, params)?;
                let result = self.eval_select(select, env, source, params)?;
                if result.columns.len() != 1 {
                    return Err(SqlError::new(
                        format!(
                            "IN subquery must produce one column, produced {}",
                            result.columns.len()
                        ),
                        *span,
                        source,
                    ));
                }
                if needle.is_null() {
                    return Ok(Value::Null);
                }
                let found = result
                    .rows
                    .iter()
                    .any(|row| values_eq(&needle, &row[0]) == Some(true));
                Ok(Value::Bool(found != *negated))
            }
            Expr::Exists { select, negated } => {
                let result = self.eval_select(select, env, source, params)?;
                Ok(Value::Bool(result.rows.is_empty() == *negated))
            }
        }
    }
}

/// How two values relate under `<`/`<=`/`>`/`>=`.
enum ValueOrder {
    /// One side is `NULL` — SQL "unknown".
    Unknown,
    /// Different, unordered types (an emitter bug worth surfacing).
    Incomparable,
    /// A definite ordering.
    Ordering(std::cmp::Ordering),
}

/// Numeric view of a value: integers, and surrogate keys (which are plain
/// integers at the SQL level — the migration's skolem expressions do
/// arithmetic on them).
fn numeric(value: &Value) -> Option<i64> {
    match value {
        Value::Int(n) => Some(*n),
        Value::Uid(u) => i64::try_from(*u).ok(),
        _ => None,
    }
}

/// SQL equality: `NULL` yields unknown (`None`); surrogate keys compare
/// numerically against integers; the SQLite dialect's `1`/`0` boolean
/// literals compare against booleans.
fn values_eq(a: &Value, b: &Value) -> Option<bool> {
    if a.is_null() || b.is_null() {
        return None;
    }
    if a == b {
        return Some(true);
    }
    match (a, b) {
        (Value::Bool(x), Value::Int(n)) | (Value::Int(n), Value::Bool(x)) => {
            Some(i64::from(*x) == *n)
        }
        _ => match (numeric(a), numeric(b)) {
            (Some(x), Some(y)) => Some(x == y),
            _ => Some(false),
        },
    }
}

fn values_cmp(a: &Value, b: &Value) -> ValueOrder {
    if a.is_null() || b.is_null() {
        return ValueOrder::Unknown;
    }
    if let (Some(x), Some(y)) = (numeric(a), numeric(b)) {
        return ValueOrder::Ordering(x.cmp(&y));
    }
    match (a, b) {
        (Value::Str(x), Value::Str(y)) => ValueOrder::Ordering(x.as_str().cmp(y.as_str())),
        (Value::Bytes(x), Value::Bytes(y)) => ValueOrder::Ordering(x.as_bytes().cmp(y.as_bytes())),
        (Value::Bool(x), Value::Bool(y)) => ValueOrder::Ordering(x.cmp(y)),
        _ => ValueOrder::Incomparable,
    }
}

/// Three-valued truth of a value: `TRUE`/`FALSE`, nonzero/zero integers
/// (SQLite boolean rendering), and `None` for `NULL` (unknown).
fn truth(value: &Value) -> Option<bool> {
    match value {
        Value::Null => None,
        Value::Bool(b) => Some(*b),
        Value::Int(n) => Some(*n != 0),
        _ => Some(false),
    }
}

/// `WHERE` truthiness: unknown (`NULL`) filters the row out.
fn truthy(value: &Value) -> bool {
    truth(value) == Some(true)
}

/// Coerces an inserted value into a declared column type: integer `1`/`0`
/// become booleans in `BOOLEAN` columns (the SQLite dialect renders boolean
/// literals numerically). Everything else is stored as computed.
fn coerce(value: Value, ty: Option<DataType>) -> Value {
    match (value, ty) {
        (Value::Int(n), Some(DataType::Bool)) if n == 0 || n == 1 => Value::Bool(n == 1),
        _ => value,
    }
}

/// One resolvable column of a FROM relation.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ColLabel {
    /// The table name the column is reachable under.
    qualifier: String,
    /// The column name.
    name: String,
}

fn table_labels(table: &Table, qualifier: &str) -> Vec<ColLabel> {
    table
        .columns
        .iter()
        .map(|c| ColLabel {
            qualifier: qualifier.to_string(),
            name: c.name.clone(),
        })
        .collect()
}

/// The column environment of an expression: a stack of row frames,
/// outermost first. Correlated subqueries resolve against their own FROM
/// frame first, then the enclosing rows.
#[derive(Debug, Clone, Default)]
struct Env<'a> {
    frames: Vec<(&'a [ColLabel], &'a [Value])>,
}

impl<'a> Env<'a> {
    /// A new environment with one additional (innermost) frame. The result
    /// lives no longer than the pushed row.
    fn with<'b>(&self, labels: &'b [ColLabel], row: &'b [Value]) -> Env<'b>
    where
        'a: 'b,
    {
        let mut frames: Vec<(&'b [ColLabel], &'b [Value])> =
            self.frames.iter().map(|&(l, r)| (l as _, r as _)).collect();
        frames.push((labels, row));
        Env { frames }
    }

    /// Whether a column reference can resolve in some frame (used for the
    /// static column check — ambiguity is still reported at evaluation).
    fn resolvable(&self, qualifier: Option<&str>, name: &str) -> bool {
        self.frames.iter().any(|(labels, _)| {
            labels
                .iter()
                .any(|l| l.name == name && qualifier.map(|q| l.qualifier == q).unwrap_or(true))
        })
    }

    fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<Value, String> {
        // Innermost frame first.
        for (labels, row) in self.frames.iter().rev() {
            let mut matches = labels.iter().enumerate().filter(|(_, l)| {
                l.name == name && qualifier.map(|q| l.qualifier == q).unwrap_or(true)
            });
            if let Some((index, _)) = matches.next() {
                if matches.next().is_some() {
                    return Err(format!("ambiguous column `{name}`"));
                }
                return Ok(row[index]);
            }
        }
        match qualifier {
            Some(q) => Err(format!("unknown column `{q}.{name}`")),
            None => Err(format!("unknown column `{name}`")),
        }
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct TableRef {
    name: String,
    span: Span,
}

#[derive(Debug, Clone)]
enum InsertSource {
    Values(Vec<Vec<Expr>>),
    Select(Select),
}

#[derive(Debug, Clone)]
enum SelectItem {
    Star,
    Expr { expr: Expr, alias: Option<String> },
}

#[derive(Debug, Clone)]
struct FromItem {
    table: TableRef,
    /// The ON condition for joined tables; `None` for the first table and
    /// comma-separated cross joins.
    on: Option<Expr>,
}

#[derive(Debug, Clone)]
struct Select {
    distinct: bool,
    items: Vec<SelectItem>,
    from: Vec<FromItem>,
    filter: Option<Expr>,
}

#[derive(Debug, Clone)]
enum Stmt {
    CreateTable {
        table: TableRef,
        columns: Vec<Column>,
        primary_key: Option<(String, Span)>,
        temporary: bool,
    },
    CreateTableAs {
        table: TableRef,
        temporary: bool,
        select: Select,
    },
    DropTable(TableRef),
    AlterRename {
        table: TableRef,
        to: String,
    },
    Insert {
        table: TableRef,
        columns: Vec<String>,
        source: InsertSource,
    },
    Update {
        table: TableRef,
        sets: Vec<(String, Expr)>,
        filter: Option<Expr>,
    },
    Delete {
        table: TableRef,
        filter: Option<Expr>,
    },
    Select(Select),
    TxnNoop,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParamKey {
    Named(String),
    Indexed(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UnOp {
    Neg,
    Not,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BinOp {
    Or,
    And,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
}

#[derive(Debug, Clone)]
enum Expr {
    Literal(Value),
    Column {
        qualifier: Option<String>,
        name: String,
        span: Span,
    },
    Param {
        key: ParamKey,
        span: Span,
    },
    Unary {
        op: UnOp,
        expr: Box<Expr>,
        span: Span,
    },
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        span: Span,
    },
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    In {
        needle: Box<Expr>,
        select: Box<Select>,
        negated: bool,
        span: Span,
    },
    Exists {
        select: Box<Select>,
        negated: bool,
    },
}

struct Parser<'a> {
    source: &'a str,
    tokens: Vec<Token>,
    pos: usize,
    /// Bare `?` placeholders (MySQL style) seen in the current statement;
    /// each one binds the next 1-based positional parameter.
    bare_params: usize,
    /// Whether the current statement used a numbered `?N` placeholder
    /// (SQLite style). The two `?` styles cannot mix in one statement.
    numbered_params: bool,
}

fn parse_script(sql: &str) -> Result<Vec<Stmt>, SqlError> {
    let tokens = tokenize(sql)?;
    let mut parser = Parser {
        source: sql,
        tokens,
        pos: 0,
        bare_params: 0,
        numbered_params: false,
    };
    let mut statements = Vec::new();
    while parser.peek().is_some() {
        if parser.eat_punct(';') {
            continue;
        }
        parser.bare_params = 0;
        parser.numbered_params = false;
        statements.push(parser.statement()?);
        if parser.peek().is_some() {
            parser.expect_punct(';')?;
        }
    }
    Ok(statements)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_at(&self, offset: usize) -> Option<&Token> {
        self.tokens.get(self.pos + offset)
    }

    fn next(&mut self) -> Option<Token> {
        let token = self.tokens.get(self.pos).cloned();
        if token.is_some() {
            self.pos += 1;
        }
        token
    }

    fn eof_span(&self) -> Span {
        self.tokens
            .last()
            .map(|t| t.span)
            .unwrap_or(Span::point(1, 1))
    }

    fn error(&self, message: impl Into<String>, span: Span) -> SqlError {
        SqlError::new(message, span, self.source)
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_kw(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek().is_some_and(|t| t.is_punct(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<Token, SqlError> {
        match self.next() {
            Some(t) if t.is_kw(kw) => Ok(t),
            Some(t) => Err(self.error(format!("expected `{kw}`"), t.span)),
            None => Err(self.error(
                format!("expected `{kw}`, found end of input"),
                self.eof_span(),
            )),
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<Token, SqlError> {
        match self.next() {
            Some(t) if t.is_punct(c) => Ok(t),
            Some(t) => Err(self.error(format!("expected `{c}`"), t.span)),
            None => Err(self.error(
                format!("expected `{c}`, found end of input"),
                self.eof_span(),
            )),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<(String, Span), SqlError> {
        match self.next() {
            Some(t) => match t.ident() {
                Some(name) => Ok((name.to_string(), t.span)),
                None => Err(self.error(format!("expected {what}"), t.span)),
            },
            None => Err(self.error(
                format!("expected {what}, found end of input"),
                self.eof_span(),
            )),
        }
    }

    fn table_ref(&mut self) -> Result<TableRef, SqlError> {
        let (name, span) = self.expect_ident("table name")?;
        Ok(TableRef { name, span })
    }

    fn statement(&mut self) -> Result<Stmt, SqlError> {
        let Some(first) = self.peek().cloned() else {
            return Err(self.error("expected a statement", self.eof_span()));
        };
        if first.is_kw("BEGIN") || first.is_kw("COMMIT") {
            self.next();
            // Accept an optional TRANSACTION keyword.
            self.eat_kw("TRANSACTION");
            return Ok(Stmt::TxnNoop);
        }
        if first.is_kw("CREATE") {
            return self.create_table();
        }
        if first.is_kw("DROP") {
            self.next();
            self.expect_kw("TABLE")?;
            return Ok(Stmt::DropTable(self.table_ref()?));
        }
        if first.is_kw("ALTER") {
            self.next();
            self.expect_kw("TABLE")?;
            let table = self.table_ref()?;
            self.expect_kw("RENAME")?;
            self.expect_kw("TO")?;
            let (to, _) = self.expect_ident("new table name")?;
            return Ok(Stmt::AlterRename { table, to });
        }
        if first.is_kw("INSERT") {
            return self.insert();
        }
        if first.is_kw("UPDATE") {
            return self.update();
        }
        if first.is_kw("DELETE") {
            self.next();
            self.expect_kw("FROM")?;
            let table = self.table_ref()?;
            let filter = self.optional_where()?;
            return Ok(Stmt::Delete { table, filter });
        }
        if first.is_kw("SELECT") {
            return Ok(Stmt::Select(self.select()?));
        }
        Err(self.error(
            "expected CREATE, DROP, ALTER, INSERT, UPDATE, DELETE, SELECT, BEGIN or COMMIT",
            first.span,
        ))
    }

    fn create_table(&mut self) -> Result<Stmt, SqlError> {
        self.expect_kw("CREATE")?;
        let temporary = self.eat_kw("TEMPORARY") || self.eat_kw("TEMP");
        self.expect_kw("TABLE")?;
        if self.eat_kw("IF") {
            self.expect_kw("NOT")?;
            self.expect_kw("EXISTS")?;
        }
        let table = self.table_ref()?;
        if self.eat_kw("AS") {
            let select = self.select()?;
            return Ok(Stmt::CreateTableAs {
                table,
                temporary,
                select,
            });
        }
        self.expect_punct('(')?;
        let mut columns: Vec<Column> = Vec::new();
        let mut primary_key: Option<(String, Span)> = None;
        loop {
            let Some(first) = self.peek().cloned() else {
                return Err(self.error("unterminated table body", self.eof_span()));
            };
            if first.is_punct(')') {
                self.next();
                break;
            }
            if first.is_kw("PRIMARY") {
                self.next();
                self.expect_kw("KEY")?;
                self.expect_punct('(')?;
                let (column, span) = self.expect_ident("primary key column")?;
                self.expect_punct(')')?;
                if primary_key.is_some() {
                    return Err(self.error(
                        format!("table `{}` declares two primary keys", table.name),
                        span,
                    ));
                }
                primary_key = Some((column, span));
            } else if first.is_kw("FOREIGN") {
                // Referential integrity is not checked by the engine; skip
                // the declaration.
                self.next();
                self.expect_kw("KEY")?;
                self.expect_punct('(')?;
                self.expect_ident("foreign key column")?;
                self.expect_punct(')')?;
                self.expect_kw("REFERENCES")?;
                self.expect_ident("referenced table")?;
                self.expect_punct('(')?;
                self.expect_ident("referenced column")?;
                self.expect_punct(')')?;
            } else if first.is_kw("UNIQUE") {
                self.next();
                self.expect_punct('(')?;
                loop {
                    self.expect_ident("column name")?;
                    if self.eat_punct(')') {
                        break;
                    }
                    self.expect_punct(',')?;
                }
            } else if first.is_kw("CONSTRAINT") {
                self.next();
                self.expect_ident("constraint name")?;
                continue; // The named constraint body follows.
            } else {
                let (name, name_span) = self.expect_ident("column name")?;
                let (type_name, type_span) = self.expect_ident("column type")?;
                if self.eat_punct('(') {
                    let mut depth = 1usize;
                    while depth > 0 {
                        match self.next() {
                            Some(t) if t.is_punct('(') => depth += 1,
                            Some(t) if t.is_punct(')') => depth -= 1,
                            Some(_) => {}
                            None => {
                                return Err(
                                    self.error("unterminated type arguments", self.eof_span())
                                )
                            }
                        }
                    }
                }
                let Some(mut ty) = sqlbridge::ddl::data_type_for(&type_name) else {
                    return Err(
                        self.error(format!("unsupported column type `{type_name}`"), type_span)
                    );
                };
                // Column constraints.
                loop {
                    let Some(t) = self.peek().cloned() else {
                        return Err(self.error("unterminated table body", self.eof_span()));
                    };
                    if t.is_punct(',') || t.is_punct(')') {
                        break;
                    }
                    if t.is_kw("PRIMARY") {
                        self.next();
                        self.expect_kw("KEY")?;
                        if primary_key.is_some() {
                            return Err(self.error(
                                format!("table `{}` declares two primary keys", table.name),
                                t.span,
                            ));
                        }
                        primary_key = Some((name.clone(), t.span));
                    } else if t.is_kw("NOT") {
                        self.next();
                        self.expect_kw("NULL")?;
                    } else if t.is_kw("NULL") || t.is_kw("UNIQUE") {
                        self.next();
                    } else if t.is_auto_increment_kw() {
                        // A system-minted surrogate key — shared predicate
                        // with the sqlbridge DDL parser (see
                        // `Token::is_auto_increment_kw`), so the validator
                        // executes DDL under the same column types
                        // synthesis saw.
                        self.next();
                        ty = DataType::Id;
                    } else if t.is_kw("DEFAULT") {
                        self.next();
                        // A literal (possibly signed).
                        self.eat_punct('-');
                        self.next();
                    } else if t.is_kw("REFERENCES") {
                        self.next();
                        self.expect_ident("referenced table")?;
                        self.expect_punct('(')?;
                        self.expect_ident("referenced column")?;
                        self.expect_punct(')')?;
                    } else if t.is_kw("GENERATED") {
                        self.next();
                        if !self.eat_kw("ALWAYS") {
                            self.expect_kw("BY")?;
                            self.expect_kw("DEFAULT")?;
                        }
                        self.expect_kw("AS")?;
                        self.expect_kw("IDENTITY")?;
                        ty = DataType::Id;
                    } else {
                        return Err(self.error("unsupported column constraint", t.span));
                    }
                }
                if columns.iter().any(|c| c.name == name) {
                    return Err(self.error(
                        format!("duplicate column `{name}` in table `{}`", table.name),
                        name_span,
                    ));
                }
                columns.push(Column { name, ty: Some(ty) });
            }
            if self.eat_punct(',') {
                continue;
            }
            match self.peek() {
                Some(t) if t.is_punct(')') => {}
                Some(t) => {
                    let span = t.span;
                    return Err(self.error("expected `,` or `)`", span));
                }
                None => return Err(self.error("unterminated table body", self.eof_span())),
            }
        }
        Ok(Stmt::CreateTable {
            table,
            columns,
            primary_key,
            temporary,
        })
    }

    fn insert(&mut self) -> Result<Stmt, SqlError> {
        self.expect_kw("INSERT")?;
        self.expect_kw("INTO")?;
        let table = self.table_ref()?;
        self.expect_punct('(')?;
        let mut columns = Vec::new();
        loop {
            let (column, _) = self.expect_ident("column name")?;
            columns.push(column);
            if self.eat_punct(')') {
                break;
            }
            self.expect_punct(',')?;
        }
        // Postgres identity override: accepted and ignored (the engine has
        // no system-generated values to override).
        if self.eat_kw("OVERRIDING") {
            if !self.eat_kw("SYSTEM") {
                self.expect_kw("USER")?;
            }
            self.expect_kw("VALUE")?;
        }
        let source = if self.eat_kw("VALUES") {
            let mut tuples = Vec::new();
            loop {
                self.expect_punct('(')?;
                let mut tuple = Vec::new();
                loop {
                    tuple.push(self.expr()?);
                    if self.eat_punct(')') {
                        break;
                    }
                    self.expect_punct(',')?;
                }
                tuples.push(tuple);
                if !self.eat_punct(',') {
                    break;
                }
            }
            InsertSource::Values(tuples)
        } else if self.peek_kw("SELECT") {
            InsertSource::Select(self.select()?)
        } else {
            let span = self.peek().map(|t| t.span).unwrap_or(self.eof_span());
            return Err(self.error("expected `VALUES` or `SELECT`", span));
        };
        Ok(Stmt::Insert {
            table,
            columns,
            source,
        })
    }

    fn update(&mut self) -> Result<Stmt, SqlError> {
        self.expect_kw("UPDATE")?;
        let table = self.table_ref()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let (column, _) = self.expect_ident("column name")?;
            self.expect_punct('=')?;
            sets.push((column, self.expr()?));
            if !self.eat_punct(',') {
                break;
            }
        }
        let filter = self.optional_where()?;
        Ok(Stmt::Update {
            table,
            sets,
            filter,
        })
    }

    fn optional_where(&mut self) -> Result<Option<Expr>, SqlError> {
        if self.eat_kw("WHERE") {
            Ok(Some(self.expr()?))
        } else {
            Ok(None)
        }
    }

    fn select(&mut self) -> Result<Select, SqlError> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut items = Vec::new();
        loop {
            if self.eat_punct('*') {
                items.push(SelectItem::Star);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("AS") {
                    Some(self.expect_ident("column alias")?.0)
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_punct(',') {
                break;
            }
        }
        self.expect_kw("FROM")?;
        let mut from = Vec::new();
        from.push(FromItem {
            table: self.table_ref()?,
            on: None,
        });
        loop {
            if self.eat_kw("JOIN") {
                let table = self.table_ref()?;
                self.expect_kw("ON")?;
                let on = self.expr()?;
                from.push(FromItem {
                    table,
                    on: Some(on),
                });
            } else if self.eat_punct(',') {
                from.push(FromItem {
                    table: self.table_ref()?,
                    on: None,
                });
            } else {
                break;
            }
        }
        let filter = self.optional_where()?;
        Ok(Select {
            distinct,
            items,
            from,
            filter,
        })
    }

    // Expression parsing, loosest binding first: OR, AND, NOT, comparison /
    // IN / IS / EXISTS, additive, multiplicative, unary, primary.
    fn expr(&mut self) -> Result<Expr, SqlError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.and_expr()?;
        while self.peek_kw("OR") {
            let span = self.next().expect("peeked").span;
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.not_expr()?;
        while self.peek_kw("AND") {
            let span = self.next().expect("peeked").span;
            let rhs = self.not_expr()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, SqlError> {
        if self.peek_kw("NOT") && !self.peek_at(1).is_some_and(|t| t.is_kw("EXISTS")) {
            let span = self.next().expect("peeked").span;
            let expr = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(expr),
                span,
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, SqlError> {
        if self.peek_kw("EXISTS")
            || (self.peek_kw("NOT") && self.peek_at(1).is_some_and(|t| t.is_kw("EXISTS")))
        {
            let negated = self.eat_kw("NOT");
            self.expect_kw("EXISTS")?;
            self.expect_punct('(')?;
            let select = self.select()?;
            self.expect_punct(')')?;
            return Ok(Expr::Exists {
                select: Box::new(select),
                negated,
            });
        }
        let lhs = self.additive()?;
        // IS [NOT] NULL.
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        // [NOT] IN (SELECT ...).
        let negated_in = self.peek_kw("NOT") && self.peek_at(1).is_some_and(|t| t.is_kw("IN"));
        if negated_in {
            self.next();
        }
        if self.peek_kw("IN") {
            let span = self.next().expect("peeked").span;
            self.expect_punct('(')?;
            let select = self.select()?;
            self.expect_punct(')')?;
            return Ok(Expr::In {
                needle: Box::new(lhs),
                select: Box::new(select),
                negated: negated_in,
                span,
            });
        }
        // Binary comparisons; `<=`, `>=` and `<>` arrive as two tokens.
        let op = if self.eat_punct('=') {
            Some(BinOp::Eq)
        } else if self.peek().is_some_and(|t| t.is_punct('<')) {
            self.next();
            if self.eat_punct('=') {
                Some(BinOp::Le)
            } else if self.eat_punct('>') {
                Some(BinOp::Ne)
            } else {
                Some(BinOp::Lt)
            }
        } else if self.peek().is_some_and(|t| t.is_punct('>')) {
            self.next();
            if self.eat_punct('=') {
                Some(BinOp::Ge)
            } else {
                Some(BinOp::Gt)
            }
        } else {
            None
        };
        match op {
            Some(op) => {
                let span = self.peek().map(|t| t.span).unwrap_or(self.eof_span());
                let rhs = self.additive()?;
                Ok(Expr::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                    span,
                })
            }
            None => Ok(lhs),
        }
    }

    fn additive(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = if self.peek().is_some_and(|t| t.is_punct('+')) {
                BinOp::Add
            } else if self.peek().is_some_and(|t| t.is_punct('-')) {
                BinOp::Sub
            } else {
                break;
            };
            let span = self.next().expect("peeked").span;
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.unary()?;
        loop {
            let op = if self.peek().is_some_and(|t| t.is_punct('*')) {
                BinOp::Mul
            } else if self.peek().is_some_and(|t| t.is_punct('/')) {
                BinOp::Div
            } else {
                break;
            };
            let span = self.next().expect("peeked").span;
            let rhs = self.unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, SqlError> {
        if self.peek().is_some_and(|t| t.is_punct('-')) {
            let span = self.next().expect("peeked").span;
            let expr = self.unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(expr),
                span,
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, SqlError> {
        let Some(token) = self.peek().cloned() else {
            return Err(self.error("expected an expression", self.eof_span()));
        };
        // Placeholders.
        if token.is_punct('?') || token.is_punct('$') {
            self.next();
            let style = if token.is_punct('?') { '?' } else { '$' };
            // A bare `?` (MySQL style) binds the next positional parameter.
            // The two `?` styles must not mix within one statement: the
            // bare counter knows nothing about explicitly numbered slots,
            // so a mixture would silently bind the wrong parameter.
            if style == '?'
                && !matches!(self.peek(), Some(t) if matches!(t.kind, TokenKind::Number(_)))
            {
                if self.numbered_params {
                    return Err(self.error(
                        "cannot mix bare `?` and numbered `?N` placeholders in one statement",
                        token.span,
                    ));
                }
                self.bare_params += 1;
                return Ok(Expr::Param {
                    key: ParamKey::Indexed(self.bare_params),
                    span: token.span,
                });
            }
            if style == '?' && self.bare_params > 0 {
                return Err(self.error(
                    "cannot mix bare `?` and numbered `?N` placeholders in one statement",
                    token.span,
                ));
            }
            let Some(t) = self.next() else {
                return Err(self.error(format!("expected a number after `{style}`"), token.span));
            };
            let TokenKind::Number(text) = &t.kind else {
                return Err(self.error(format!("expected a number after `{style}`"), t.span));
            };
            let index: usize = text
                .parse()
                .map_err(|_| self.error(format!("invalid placeholder `{style}{text}`"), t.span))?;
            if style == '?' {
                self.numbered_params = true;
            }
            return Ok(Expr::Param {
                key: ParamKey::Indexed(index),
                span: token.span,
            });
        }
        if token.is_punct(':') {
            self.next();
            let (name, span) = self.expect_ident("parameter name")?;
            return Ok(Expr::Param {
                key: ParamKey::Named(name),
                span,
            });
        }
        // Parenthesized expression.
        if token.is_punct('(') {
            self.next();
            let expr = self.expr()?;
            self.expect_punct(')')?;
            return Ok(expr);
        }
        match &token.kind {
            TokenKind::Number(text) => {
                self.next();
                let value: i64 = text
                    .parse()
                    .map_err(|_| self.error(format!("invalid number `{text}`"), token.span))?;
                Ok(Expr::Literal(Value::Int(value)))
            }
            TokenKind::StringLit(text) => {
                self.next();
                Ok(Expr::Literal(Value::str(text)))
            }
            TokenKind::Ident { text, quoted } => {
                if !quoted {
                    if text.eq_ignore_ascii_case("NULL") {
                        self.next();
                        return Ok(Expr::Literal(Value::Null));
                    }
                    if text.eq_ignore_ascii_case("TRUE") {
                        self.next();
                        return Ok(Expr::Literal(Value::Bool(true)));
                    }
                    if text.eq_ignore_ascii_case("FALSE") {
                        self.next();
                        return Ok(Expr::Literal(Value::Bool(false)));
                    }
                    // Blob literal: X'ab01'.
                    if text.eq_ignore_ascii_case("X") {
                        if let Some(TokenKind::StringLit(hex)) =
                            self.peek_at(1).map(|t| t.kind.clone())
                        {
                            self.next();
                            let hex_token = self.next().expect("peeked");
                            let bytes = decode_hex(&hex).ok_or_else(|| {
                                self.error("invalid blob literal", hex_token.span)
                            })?;
                            return Ok(Expr::Literal(Value::bytes(bytes)));
                        }
                    }
                }
                // Column reference: `name` or `qualifier.name`.
                self.next();
                if self.eat_punct('.') {
                    let (name, span) = self.expect_ident("column name")?;
                    Ok(Expr::Column {
                        qualifier: Some(text.clone()),
                        name,
                        span,
                    })
                } else {
                    Ok(Expr::Column {
                        qualifier: None,
                        name: text.clone(),
                        span: token.span,
                    })
                }
            }
            _ => Err(self.error("expected an expression", token.span)),
        }
    }
}

/// Collects the column references of an expression that belong to the
/// *current* select scope — subquery bodies are skipped (they validate
/// themselves against their own FROM when they run).
fn collect_column_refs(expr: &Expr, out: &mut Vec<(Option<String>, String, Span)>) {
    match expr {
        Expr::Literal(_) | Expr::Param { .. } | Expr::Exists { .. } => {}
        Expr::Column {
            qualifier,
            name,
            span,
        } => out.push((qualifier.clone(), name.clone(), *span)),
        Expr::Unary { expr, .. } => collect_column_refs(expr, out),
        Expr::Binary { lhs, rhs, .. } => {
            collect_column_refs(lhs, out);
            collect_column_refs(rhs, out);
        }
        Expr::IsNull { expr, .. } => collect_column_refs(expr, out),
        Expr::In { needle, .. } => collect_column_refs(needle, out),
    }
}

fn decode_hex(hex: &str) -> Option<Vec<u8>> {
    if !hex.len().is_multiple_of(2) {
        return None;
    }
    (0..hex.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(hex.get(i..i + 2)?, 16).ok())
        .collect()
}

impl Database {
    /// Convenience: executes a single `SELECT` and returns its result.
    ///
    /// # Errors
    ///
    /// Fails when the script is not exactly one `SELECT`, or on any parse or
    /// execution error.
    pub fn query(&mut self, sql: &str, params: &Params) -> Result<QueryResult, SqlError> {
        let mut results = self.execute_script(sql, params)?;
        if results.len() != 1 {
            return Err(SqlError::new(
                format!("expected exactly one SELECT, found {}", results.len()),
                Span::point(1, 1),
                sql,
            ));
        }
        Ok(results.remove(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(script: &str) -> Database {
        let mut db = Database::new();
        db.execute_script(script, &Params::none()).unwrap();
        db
    }

    fn sorted_rows(db: &mut Database, sql: &str) -> Vec<Vec<Value>> {
        let mut rows = db.query(sql, &Params::none()).unwrap().rows;
        rows.sort();
        rows
    }

    #[test]
    fn create_insert_select_with_join_and_where() {
        let mut db = db("CREATE TABLE Person (pid INTEGER, name TEXT);\n\
             CREATE TABLE Address (pid INTEGER, city TEXT);\n\
             INSERT INTO Person (pid, name) VALUES (1, 'ada');\n\
             INSERT INTO Person (pid, name) VALUES (2, 'bob');\n\
             INSERT INTO Address (pid, city) VALUES (1, 'paris');\n\
             INSERT INTO Address (pid, city) VALUES (2, 'oslo');");
        let result = db
            .query(
                "SELECT Person.name, Address.city FROM Person JOIN Address \
                 ON Person.pid = Address.pid WHERE Person.pid = 2;",
                &Params::none(),
            )
            .unwrap();
        assert_eq!(result.columns, vec!["name", "city"]);
        assert_eq!(
            result.rows,
            vec![vec![Value::str("bob"), Value::str("oslo")]]
        );
    }

    #[test]
    fn insert_select_reads_pre_insert_state() {
        let mut db = db("CREATE TABLE T (a INTEGER);\n\
             INSERT INTO T (a) VALUES (1);\n\
             INSERT INTO T (a) SELECT T.a + 10 FROM T;");
        assert_eq!(
            sorted_rows(&mut db, "SELECT T.a FROM T;"),
            vec![vec![Value::Int(1)], vec![Value::Int(11)]]
        );
    }

    #[test]
    fn primary_key_insert_upserts() {
        let mut db = db("CREATE TABLE U (uid INTEGER PRIMARY KEY, name TEXT);\n\
             INSERT INTO U (uid, name) VALUES (1, 'old');\n\
             INSERT INTO U (uid, name) VALUES (1, 'new');\n\
             INSERT INTO U (uid, name) VALUES (2, 'other');");
        assert_eq!(
            sorted_rows(&mut db, "SELECT U.uid, U.name FROM U;"),
            vec![
                vec![Value::Int(1), Value::str("new")],
                vec![Value::Int(2), Value::str("other")],
            ]
        );
    }

    #[test]
    fn update_with_correlated_exists() {
        let mut db = db("CREATE TABLE A (x INTEGER, y INTEGER);\n\
             CREATE TABLE B (x INTEGER);\n\
             INSERT INTO A (x, y) VALUES (1, 10);\n\
             INSERT INTO A (x, y) VALUES (2, 20);\n\
             INSERT INTO B (x) VALUES (2);\n\
             UPDATE A SET y = 99 WHERE EXISTS (SELECT 1 FROM B WHERE B.x = A.x);");
        assert_eq!(
            sorted_rows(&mut db, "SELECT A.x, A.y FROM A;"),
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(2), Value::Int(99)],
            ]
        );
    }

    #[test]
    fn delete_with_in_subquery_and_not() {
        let mut db = db("CREATE TABLE A (x INTEGER);\n\
             CREATE TABLE B (x INTEGER);\n\
             INSERT INTO A (x) VALUES (1);\n\
             INSERT INTO A (x) VALUES (2);\n\
             INSERT INTO A (x) VALUES (3);\n\
             INSERT INTO B (x) VALUES (2);\n\
             DELETE FROM A WHERE A.x IN (SELECT B.x FROM B);");
        assert_eq!(
            sorted_rows(&mut db, "SELECT A.x FROM A;"),
            vec![vec![Value::Int(1)], vec![Value::Int(3)]]
        );
        db.execute_script(
            "DELETE FROM A WHERE A.x NOT IN (SELECT B.x FROM B);",
            &Params::none(),
        )
        .unwrap();
        assert_eq!(
            sorted_rows(&mut db, "SELECT A.x FROM A;"),
            Vec::<Vec<Value>>::new()
        );
    }

    #[test]
    fn temporary_snapshot_table_lifecycle() {
        let mut db = db("CREATE TABLE T (a INTEGER, b INTEGER);\n\
             INSERT INTO T (a, b) VALUES (1, 1);\n\
             INSERT INTO T (a, b) VALUES (1, 2);\n\
             CREATE TEMPORARY TABLE snap AS SELECT DISTINCT T.a AS a FROM T;\n\
             DELETE FROM T WHERE EXISTS (SELECT 1 FROM snap WHERE snap.a = T.a);\n\
             DROP TABLE snap;");
        assert!(db.table("snap").is_none());
        assert_eq!(
            sorted_rows(&mut db, "SELECT T.a FROM T;"),
            Vec::<Vec<Value>>::new()
        );
    }

    #[test]
    fn alter_table_rename_stages_a_table() {
        let db = db("CREATE TABLE T (a INTEGER);\n\
             INSERT INTO T (a) VALUES (7);\n\
             ALTER TABLE T RENAME TO legacy_T;\n\
             CREATE TABLE T (a INTEGER, b TEXT);");
        assert_eq!(db.table("legacy_T").unwrap().rows.len(), 1);
        assert_eq!(db.table("T").unwrap().rows.len(), 0);
    }

    #[test]
    fn placeholders_bind_named_and_positional() {
        let mut db = db("CREATE TABLE T (a INTEGER, b TEXT);");
        db.execute_script(
            "INSERT INTO T (a, b) VALUES (?1, ?2);",
            &Params::positional(vec![Value::Int(5), Value::str("five")]),
        )
        .unwrap();
        db.execute_script(
            "INSERT INTO T (a, b) VALUES (:a, :b);",
            &Params::none()
                .with_named("a", Value::Int(6))
                .with_named("b", Value::str("six")),
        )
        .unwrap();
        assert_eq!(
            sorted_rows(&mut db, "SELECT T.a, T.b FROM T;"),
            vec![
                vec![Value::Int(5), Value::str("five")],
                vec![Value::Int(6), Value::str("six")],
            ]
        );
        let err = db
            .execute_script("INSERT INTO T (a, b) VALUES (?1, ?2);", &Params::none())
            .unwrap_err();
        assert!(err.message.contains("unbound parameter"), "{err}");
    }

    #[test]
    fn bare_placeholders_bind_positionally() {
        // MySQL-style bare `?`: each occurrence binds the next positional
        // parameter, counted per statement.
        let mut db = db("CREATE TABLE T (a INTEGER, b TEXT);");
        db.execute_script(
            "INSERT INTO T (a, b) VALUES (?, ?);",
            &Params::positional(vec![Value::Int(7), Value::str("seven")]),
        )
        .unwrap();
        let result = db
            .query(
                "SELECT T.b FROM T WHERE T.a = ?;",
                &Params::positional(vec![Value::Int(7)]),
            )
            .unwrap();
        assert_eq!(result.rows, vec![vec![Value::str("seven")]]);
    }

    #[test]
    fn mixed_bare_and_numbered_placeholders_are_rejected() {
        let mut db = db("CREATE TABLE T (a INTEGER, b TEXT);");
        for sql in [
            "SELECT T.b FROM T WHERE T.a = ?1 AND T.b = ?;",
            "SELECT T.b FROM T WHERE T.a = ? AND T.b = ?2;",
        ] {
            let err = db
                .query(
                    sql,
                    &Params::positional(vec![Value::Int(1), Value::str("x")]),
                )
                .unwrap_err();
            assert!(err.message.contains("cannot mix"), "{sql}: {err}");
        }
        // Consecutive statements are independent: one bare, one numbered.
        db.execute_script(
            "INSERT INTO T (a, b) VALUES (?, ?); INSERT INTO T (a, b) VALUES (?1, ?2);",
            &Params::positional(vec![Value::Int(1), Value::str("x")]),
        )
        .unwrap();
    }

    #[test]
    fn auto_increment_columns_are_surrogate_keys() {
        // `AUTO_INCREMENT` marks a surrogate-key column exactly like
        // `GENERATED ... AS IDENTITY`; backtick quoting parses too.
        let mut db = db("CREATE TABLE `Order` (id BIGINT AUTO_INCREMENT, label TEXT);");
        let order = db.table("Order").expect("table created");
        assert_eq!(order.columns[0].ty, Some(DataType::Id));
        assert_eq!(order.columns[1].ty, Some(DataType::String));
        // Explicit values insert fine (MySQL allows them without any
        // overriding clause).
        db.execute_script(
            "INSERT INTO `Order` (id, label) VALUES (0, 'first');",
            &Params::none(),
        )
        .unwrap();
        let schema = dbir::Schema::parse("Order(id: id, label: string)").unwrap();
        assert_eq!(db.to_instance(&schema).unwrap().total_rows(), 1);
    }

    #[test]
    fn arithmetic_and_comparisons() {
        let mut db = db("CREATE TABLE T (a INTEGER);\n\
             INSERT INTO T (a) VALUES (3);\n\
             INSERT INTO T (a) VALUES (4);");
        let result = db
            .query(
                "SELECT T.a * 10 + 1 FROM T WHERE T.a <= 3;",
                &Params::none(),
            )
            .unwrap();
        assert_eq!(result.rows, vec![vec![Value::Int(31)]]);
        let result = db
            .query(
                "SELECT T.a FROM T WHERE T.a <> 3 AND T.a >= 4;",
                &Params::none(),
            )
            .unwrap();
        assert_eq!(result.rows, vec![vec![Value::Int(4)]]);
    }

    #[test]
    fn booleans_coerce_into_bool_columns() {
        let mut db = db("CREATE TABLE T (flag BOOLEAN);\n\
             INSERT INTO T (flag) VALUES (1);\n\
             INSERT INTO T (flag) VALUES (FALSE);");
        assert_eq!(
            sorted_rows(&mut db, "SELECT T.flag FROM T;"),
            vec![vec![Value::Bool(false)], vec![Value::Bool(true)]]
        );
        let result = db
            .query("SELECT T.flag FROM T WHERE T.flag = 1;", &Params::none())
            .unwrap();
        assert_eq!(result.rows, vec![vec![Value::Bool(true)]]);
    }

    #[test]
    fn blob_and_null_literals() {
        let mut db = db("CREATE TABLE T (b BLOB, n INTEGER);\n\
             INSERT INTO T (b, n) VALUES (X'ab01', NULL);");
        let result = db
            .query("SELECT T.b FROM T WHERE T.n IS NULL;", &Params::none())
            .unwrap();
        assert_eq!(result.rows, vec![vec![Value::bytes([0xab, 0x01])]]);
        let empty = db
            .query("SELECT T.b FROM T WHERE T.n = 0;", &Params::none())
            .unwrap();
        assert!(empty.rows.is_empty(), "NULL compares as unknown");
    }

    /// Review regression: SQL three-valued logic. `NOT (NULL = 5)` is
    /// NULL (row filtered), matching real SQLite — not TRUE.
    #[test]
    fn null_propagates_through_not_and_logic() {
        let mut db = db("CREATE TABLE T (x INTEGER, tag TEXT);\n\
             INSERT INTO T (x, tag) VALUES (NULL, 'null');\n\
             INSERT INTO T (x, tag) VALUES (5, 'five');\n\
             INSERT INTO T (x, tag) VALUES (6, 'six');");
        // NOT over an unknown comparison keeps the NULL row out, exactly
        // like the positive form does.
        let result = db
            .query("SELECT T.tag FROM T WHERE NOT (T.x = 5);", &Params::none())
            .unwrap();
        assert_eq!(result.rows, vec![vec![Value::str("six")]]);
        // Kleene AND/OR: FALSE dominates AND, TRUE dominates OR, NULL
        // propagates otherwise.
        let result = db
            .query(
                "SELECT T.tag FROM T WHERE NOT (T.x = 5 OR T.x = 6);",
                &Params::none(),
            )
            .unwrap();
        assert!(result.rows.is_empty(), "{:?}", result.rows);
        let result = db
            .query(
                "SELECT T.tag FROM T WHERE T.x = 5 OR NOT (T.x = 5);",
                &Params::none(),
            )
            .unwrap();
        assert_eq!(result.rows.len(), 2, "NULL row stays excluded");
        // DELETE with NOT keeps the NULL row, as sqlite3 does.
        db.execute_script("DELETE FROM T WHERE NOT (T.x = 5);", &Params::none())
            .unwrap();
        assert_eq!(
            sorted_rows(&mut db, "SELECT T.tag FROM T;"),
            vec![vec![Value::str("five")], vec![Value::str("null")]]
        );
    }

    #[test]
    fn missing_insert_columns_default_to_null() {
        let mut db = db("CREATE TABLE T (a INTEGER, b TEXT);\n\
             INSERT INTO T (a) VALUES (1);");
        assert_eq!(
            sorted_rows(&mut db, "SELECT T.a, T.b FROM T;"),
            vec![vec![Value::Int(1), Value::Null]]
        );
    }

    #[test]
    fn errors_carry_spans() {
        let mut empty_db = Database::new();
        let err = empty_db
            .execute_script("SELECT Missing.a FROM Missing;", &Params::none())
            .unwrap_err();
        assert!(err.message.contains("does not exist"), "{err}");
        assert!(err.to_string().contains("^"), "{err}");

        let mut db = db("CREATE TABLE T (a INTEGER);");
        let err = db
            .query("SELECT T.nope FROM T;", &Params::none())
            .unwrap_err();
        assert!(err.message.contains("unknown column"), "{err}");

        let err = db
            .execute_script("FROBNICATE;", &Params::none())
            .unwrap_err();
        assert!(err.message.contains("expected CREATE"), "{err}");
    }

    #[test]
    fn syntax_errors_do_not_mutate() {
        let mut db = db("CREATE TABLE T (a INTEGER);");
        let err = db
            .execute_script("INSERT INTO T (a) VALUES (1); SELEKT;", &Params::none())
            .unwrap_err();
        assert!(err.message.contains("expected"), "{err}");
        assert_eq!(
            db.table("T").unwrap().rows.len(),
            0,
            "script parsed before executing"
        );
    }

    #[test]
    fn instance_roundtrip_is_lossless() {
        let schema = Schema::parse("T(pk a: int, b: string, c: binary, d: bool, e: id)").unwrap();
        let mut instance = Instance::empty(&schema);
        instance.insert(
            &"T".into(),
            vec![
                Value::Int(1),
                Value::str("x"),
                Value::bytes([9]),
                Value::Bool(true),
                Value::Uid(7),
            ],
        );
        let db = Database::from_instance(&schema, &instance);
        assert_eq!(db.table("T").unwrap().primary_key, Some(0));
        let back = db.to_instance(&schema).unwrap();
        assert_eq!(instance, back);
    }

    #[test]
    fn comma_join_is_a_cross_product() {
        let mut db = db("CREATE TABLE A (x INTEGER);\n\
             CREATE TABLE B (y INTEGER);\n\
             INSERT INTO A (x) VALUES (1);\n\
             INSERT INTO A (x) VALUES (2);\n\
             INSERT INTO B (y) VALUES (3);");
        let result = db
            .query("SELECT A.x, B.y FROM A, B;", &Params::none())
            .unwrap();
        assert_eq!(result.rows.len(), 2);
    }
}
