//! # sqlexec — execute the SQL we emit, and validate migrations end-to-end
//!
//! The rest of the pipeline stops at *text*: `sqlbridge` emits DDL,
//! parameterized program SQL and `INSERT .. SELECT` migration scripts that
//! are round-trip-tested syntactically but never executed. This crate
//! closes the loop:
//!
//! * [`engine`] — a dependency-free in-memory SQL engine (reusing the
//!   `sqlbridge` tokenizer) covering exactly the statement subset the
//!   pipeline emits, over a [`Database`] that converts losslessly to and
//!   from [`dbir::Instance`];
//! * [`backend`] — the [`Backend`] abstraction over *where* SQL runs: the
//!   in-tree [`MemoryBackend`] (always available, runs in CI) and a
//!   [`Sqlite3Backend`] that shells out to a `sqlite3` binary when one is
//!   installed;
//! * [`validate`] — the migration validator: seed a deterministic source
//!   instance, emit its rows as dialect-correct `INSERT`s, run the emitted
//!   DDL + migration script through a backend, and assert the resulting
//!   target instance is row-multiset-equal to what evaluating the
//!   [`sqlbridge::MigrationPlan`] directly over the `dbir` instance
//!   predicts (surrogate-key columns compared up to a bijection).
//!
//! Executing the emitted SQL — instead of only inspecting it — is what
//! catches semantic emitter bugs like the multi-table `DELETE` ordering
//! bug of PR 1, which was invisible to every syntactic test.
//!
//! ## Example
//!
//! ```
//! use dbir::Schema;
//! use migrator::ValueCorrespondence;
//! use dbir::schema::QualifiedAttr;
//! use sqlexec::{validate_migration, MemoryBackend};
//!
//! let source = Schema::parse("Person(pid: int, name: string)\nAddress(pid: int, city: string)")
//!     .unwrap();
//! let target = Schema::parse("Contact(pid: int, name: string, city: string)").unwrap();
//! let mut phi = ValueCorrespondence::new();
//! phi.add(QualifiedAttr::new("Person", "pid"), QualifiedAttr::new("Contact", "pid"));
//! phi.add(QualifiedAttr::new("Person", "name"), QualifiedAttr::new("Contact", "name"));
//! phi.add(QualifiedAttr::new("Address", "city"), QualifiedAttr::new("Contact", "city"));
//!
//! let outcome = validate_migration(&source, &target, &phi, &mut MemoryBackend::new(), 3)
//!     .expect("backend runs");
//! assert!(outcome.ok, "{:?}", outcome.details);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backend;
pub mod engine;
pub mod validate;

pub use backend::{Backend, BackendError, MemoryBackend, Sqlite3Backend};
pub use engine::{Database, Params, QueryResult};
pub use validate::{
    predicted_target, seed_instance, validate_migration, validate_migration_dialect,
    validate_migration_observed, InstanceDiff, ValidationOutcome, DEFAULT_ROWS_PER_TABLE,
};
