//! Where emitted SQL runs: the [`Backend`] trait and its two
//! implementations.
//!
//! [`MemoryBackend`] wraps the in-tree [`engine`](crate::engine) and is
//! always available — CI exercises every migration through it.
//! [`Sqlite3Backend`] shells out to a `sqlite3` binary when one is
//! installed ([`Sqlite3Backend::detect`]), executing the very same script
//! against a real database engine; offline runners simply skip it.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Stdio};

use dbir::{DataType, Instance, Schema, Value};

use crate::engine::{Database, Params};

/// An error from a backend: a message plus the backend that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendError {
    /// Which backend failed.
    pub backend: &'static str,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.backend, self.message)
    }
}

impl std::error::Error for BackendError {}

/// A place where SQL scripts execute and table contents can be read back.
pub trait Backend {
    /// The backend's CLI name (`memory`, `sqlite3`).
    fn name(&self) -> &'static str;

    /// Executes a SQL script (any number of `;`-separated statements).
    ///
    /// # Errors
    ///
    /// Fails when any statement is rejected; the database state is then
    /// unspecified (validation reports the error instead of comparing).
    fn execute_script(&mut self, sql: &str) -> Result<(), BackendError>;

    /// Reads the current contents of `schema`'s tables back as a
    /// [`dbir::Instance`].
    ///
    /// # Errors
    ///
    /// Fails when a schema table is missing or unreadable.
    fn snapshot(&mut self, schema: &Schema) -> Result<Instance, BackendError>;
}

impl std::fmt::Debug for dyn Backend + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Backend({})", self.name())
    }
}

/// The in-tree engine as a backend. Always available.
#[derive(Debug, Clone, Default)]
pub struct MemoryBackend {
    database: Database,
}

impl MemoryBackend {
    /// An empty in-memory database.
    pub fn new() -> MemoryBackend {
        MemoryBackend::default()
    }

    /// Access to the underlying database (for tests and tooling).
    pub fn database(&self) -> &Database {
        &self.database
    }

    /// Mutable access to the underlying database.
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.database
    }
}

impl Backend for MemoryBackend {
    fn name(&self) -> &'static str {
        "memory"
    }

    fn execute_script(&mut self, sql: &str) -> Result<(), BackendError> {
        self.database
            .execute_script(sql, &Params::none())
            .map(|_| ())
            .map_err(|e| BackendError {
                backend: "memory",
                message: e.to_string(),
            })
    }

    fn snapshot(&mut self, schema: &Schema) -> Result<Instance, BackendError> {
        self.database
            .to_instance(schema)
            .map_err(|message| BackendError {
                backend: "memory",
                message,
            })
    }
}

/// A backend that shells out to the `sqlite3` command-line tool, executing
/// scripts against a real SQLite database file in the system temp
/// directory.
///
/// Snapshots are read back in the CLI's `.mode quote`, which renders every
/// row as comma-separated SQL literals (`NULL`, integers, `'strings'`,
/// `X'blobs'`); each line is then parsed back through the shared SQL
/// tokenizer, so quoting and `''` escapes round-trip exactly. (A plain
/// custom separator would not survive newer CLIs, which caret-escape
/// control characters in their output.)
#[derive(Debug)]
pub struct Sqlite3Backend {
    path: PathBuf,
}

impl Sqlite3Backend {
    /// Returns the `sqlite3 --version` string when a usable binary is on
    /// `PATH`, `None` otherwise. Tests gate themselves on this so offline
    /// runners skip cleanly.
    pub fn detect() -> Option<String> {
        let output = Command::new("sqlite3").arg("--version").output().ok()?;
        if !output.status.success() {
            return None;
        }
        Some(String::from_utf8_lossy(&output.stdout).trim().to_string())
    }

    /// Creates a backend over a fresh database file in the system temp
    /// directory. The file is removed on drop.
    ///
    /// # Errors
    ///
    /// Fails when no usable `sqlite3` binary is on `PATH`.
    pub fn create() -> Result<Sqlite3Backend, BackendError> {
        if Sqlite3Backend::detect().is_none() {
            return Err(BackendError {
                backend: "sqlite3",
                message: "no usable `sqlite3` binary on PATH".to_string(),
            });
        }
        // A collision-safe fresh path: pid plus a process-wide counter, and
        // the file is claimed eagerly with `create_new` — a mere
        // `exists()` probe would hand the same path to two backends
        // created before either executes a script.
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let nonce = std::process::id();
        let path = loop {
            let counter = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let candidate =
                std::env::temp_dir().join(format!("sqlexec-validate-{nonce}-{counter}.sqlite3"));
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&candidate)
            {
                Ok(_) => break candidate,
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
                Err(e) => {
                    return Err(BackendError {
                        backend: "sqlite3",
                        message: format!("cannot create {}: {e}", candidate.display()),
                    })
                }
            }
        };
        Ok(Sqlite3Backend { path })
    }

    /// The null device, handed to `sqlite3 -init` so a user's `~/.sqliterc`
    /// cannot inject output modes (or stderr noise) into our runs.
    fn null_device() -> &'static str {
        if cfg!(windows) {
            "NUL"
        } else {
            "/dev/null"
        }
    }

    fn run(&self, script: &str) -> Result<String, BackendError> {
        let fail = |message: String| BackendError {
            backend: "sqlite3",
            message,
        };
        let mut child = Command::new("sqlite3")
            .arg("-bail")
            .arg("-batch")
            .arg("-init")
            .arg(Self::null_device())
            .arg(&self.path)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .map_err(|e| fail(format!("cannot spawn sqlite3: {e}")))?;
        child
            .stdin
            .as_mut()
            .expect("stdin piped")
            .write_all(script.as_bytes())
            .map_err(|e| fail(format!("cannot write to sqlite3: {e}")))?;
        let output = child
            .wait_with_output()
            .map_err(|e| fail(format!("sqlite3 did not exit: {e}")))?;
        let stderr = String::from_utf8_lossy(&output.stderr);
        if !output.status.success() || !stderr.trim().is_empty() {
            return Err(fail(format!(
                "sqlite3 rejected the script: {}",
                stderr.trim()
            )));
        }
        Ok(String::from_utf8_lossy(&output.stdout).into_owned())
    }
}

impl Drop for Sqlite3Backend {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

impl Backend for Sqlite3Backend {
    fn name(&self) -> &'static str {
        "sqlite3"
    }

    fn execute_script(&mut self, sql: &str) -> Result<(), BackendError> {
        self.run(sql).map(|_| ())
    }

    fn snapshot(&mut self, schema: &Schema) -> Result<Instance, BackendError> {
        let fail = |message: String| BackendError {
            backend: "sqlite3",
            message,
        };
        let mut instance = Instance::empty(schema);
        for table in schema.tables() {
            let dialect = sqlbridge::Sqlite;
            let columns: Vec<String> = table
                .columns
                .iter()
                .map(|c| sqlbridge::Dialect::ident(&dialect, c.name.as_str()))
                .collect();
            let select = format!(
                ".mode quote\nSELECT {} FROM {};",
                columns.join(", "),
                sqlbridge::Dialect::ident(&dialect, table.name.as_str())
            );
            let stdout = self.run(&select)?;
            for line in stdout.lines() {
                let types: Vec<DataType> = table.columns.iter().map(|c| c.ty).collect();
                let row = parse_literal_row(line, &types).ok_or_else(|| {
                    fail(format!(
                        "cannot parse `{line}` as a row of `{}` ({} columns)",
                        table.name,
                        table.columns.len()
                    ))
                })?;
                instance.insert(&table.name, row);
            }
        }
        Ok(instance)
    }
}

/// Parses one `.mode quote` output line — comma-separated SQL literals —
/// back into a typed row, via the shared SQL tokenizer.
fn parse_literal_row(line: &str, types: &[DataType]) -> Option<Vec<Value>> {
    use sqlbridge::token::{tokenize, TokenKind};
    let tokens = tokenize(line).ok()?;
    let mut row = Vec::new();
    let mut pos = 0usize;
    for (i, ty) in types.iter().enumerate() {
        if i > 0 {
            if !tokens.get(pos)?.is_punct(',') {
                return None;
            }
            pos += 1;
        }
        let mut negative = false;
        if tokens.get(pos)?.is_punct('-') {
            negative = true;
            pos += 1;
        }
        let token = tokens.get(pos)?;
        let value = match &token.kind {
            TokenKind::Number(text) => {
                let n: i64 = text.parse().ok()?;
                let n = if negative { -n } else { n };
                match ty {
                    DataType::Bool => Value::Bool(n != 0),
                    // Surrogate keys are integers at the SQL level; keep
                    // them integral so they compare against the predictor's
                    // skolem values.
                    _ => Value::Int(n),
                }
            }
            TokenKind::StringLit(text) => Value::str(text),
            TokenKind::Ident {
                text,
                quoted: false,
            } if text.eq_ignore_ascii_case("NULL") => Value::Null,
            // Blob literal: `X` immediately followed by a hex string.
            TokenKind::Ident {
                text,
                quoted: false,
            } if text.eq_ignore_ascii_case("X") => {
                pos += 1;
                let TokenKind::StringLit(hex) = &tokens.get(pos)?.kind else {
                    return None;
                };
                let mut bytes = Vec::new();
                let chars: Vec<char> = hex.chars().collect();
                if !chars.len().is_multiple_of(2) {
                    return None;
                }
                for pair in chars.chunks(2) {
                    let s: String = pair.iter().collect();
                    bytes.push(u8::from_str_radix(&s, 16).ok()?);
                }
                Value::bytes(bytes)
            }
            _ => return None,
        };
        if negative && !matches!(value, Value::Int(_)) {
            return None;
        }
        row.push(value);
        pos += 1;
    }
    if pos != tokens.len() {
        return None;
    }
    Some(row)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_backend_roundtrips_a_script() {
        let schema = Schema::parse("T(a: int, b: string)").unwrap();
        let mut backend = MemoryBackend::new();
        backend
            .execute_script(
                "CREATE TABLE T (a INTEGER, b TEXT);\n\
                 INSERT INTO T (a, b) VALUES (1, 'x');\n\
                 INSERT INTO T (a, b) VALUES (2, 'y');",
            )
            .unwrap();
        let instance = backend.snapshot(&schema).unwrap();
        assert_eq!(instance.rows(&"T".into()).len(), 2);
    }

    #[test]
    fn quoted_literal_rows_parse_back() {
        use DataType::*;
        assert_eq!(
            parse_literal_row(
                "NULL,-42,1,'o''hara',X'ab01'",
                &[Int, Int, Bool, String, Binary]
            ),
            Some(vec![
                Value::Null,
                Value::Int(-42),
                Value::Bool(true),
                Value::str("o'hara"),
                Value::bytes([0xab, 0x01]),
            ])
        );
        assert_eq!(parse_literal_row("wat", &[Int]), None);
        assert_eq!(
            parse_literal_row("1,2", &[Int]),
            None,
            "trailing tokens rejected"
        );
        assert_eq!(
            parse_literal_row("1", &[Int, Int]),
            None,
            "missing fields rejected"
        );
    }
}
