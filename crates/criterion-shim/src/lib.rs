//! Offline stand-in for the [criterion](https://docs.rs/criterion) benchmark
//! harness, exposing only the subset of the API the `bench` crate uses.
//!
//! The real criterion crate is not vendored in this repository, and builds
//! must work without network access. This shim keeps the bench targets
//! compiling and runnable: each `bench_function` call runs the closure for a
//! small, fixed number of timed iterations and prints a median per-iteration
//! time. The numbers are indicative only; the authoritative measurements come
//! from the `experiments` binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Entry point handed to benchmark functions, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples; the shim caps it to keep runs short.
    pub fn sample_size(&mut self, size: usize) -> &mut Self {
        self.sample_size = size.clamp(1, 20);
        self
    }

    /// Times `f` for `sample_size` iterations and prints the median.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            iterations: self.sample_size,
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        samples.sort();
        let median = samples
            .get(samples.len() / 2)
            .copied()
            .unwrap_or(Duration::ZERO);
        println!(
            "  {}/{id}: median {median:?} ({} samples)",
            self.name,
            samples.len()
        );
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Timing helper handed to the benchmark closure, mirroring
/// `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    iterations: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly, recording one wall-clock sample per run.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..self.iterations {
            let start = Instant::now();
            let output = routine();
            self.samples.push(start.elapsed());
            black_box(output);
        }
    }
}

/// Opaque value sink preventing the optimizer from deleting the benchmarked
/// computation (mirrors `criterion::black_box`).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Collects benchmark functions into a runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 3);
    }
}
