//! # sqlbridge — the SQL boundary of the Migrator pipeline
//!
//! The synthesizer (crate `migrator`) speaks its own intermediate
//! representation ([`dbir`]). This crate connects it to the outside world:
//!
//! * [`ddl`] — parse a practical subset of SQL `CREATE TABLE` statements
//!   into a [`dbir::Schema`], with span-carrying error diagnostics;
//! * [`emit`] — render schemas back to DDL and synthesized programs as
//!   parameterized SQL, behind a [`emit::Dialect`] hook (generic ANSI and
//!   SQLite provided);
//! * [`migration`] — generate `INSERT INTO target SELECT ... FROM source`
//!   scripts that move existing data to the refactored schema, from the
//!   winning value correspondence;
//! * [`json`] — a dependency-free JSON builder used by the `migrate` CLI and
//!   the experiment harness for machine-readable output.
//!
//! ## End to end
//!
//! ```
//! use migrator::{SynthesisConfig, Synthesizer};
//! use sqlbridge::emit::{render_sql_program, Ansi};
//! use sqlbridge::migration::{migration_script, render_migration_script};
//!
//! let source_schema = sqlbridge::parse_ddl(
//!     "CREATE TABLE Users (uid INTEGER PRIMARY KEY, nick TEXT);",
//! )
//! .unwrap();
//! let target_schema = sqlbridge::parse_ddl(
//!     "CREATE TABLE Users (uid INTEGER PRIMARY KEY, handle TEXT);",
//! )
//! .unwrap();
//! let source = dbir::parser::parse_program(
//!     r#"
//!     update addUser(uid: int, nick: string)
//!         INSERT INTO Users VALUES (uid: uid, nick: nick);
//!     query getUser(uid: int)
//!         SELECT nick FROM Users WHERE uid = uid;
//!     "#,
//!     &source_schema,
//! )
//! .unwrap();
//!
//! let result = Synthesizer::new(SynthesisConfig::standard())
//!     .synthesize(&source, &source_schema, &target_schema);
//! let program = result.program.expect("the rename synthesizes");
//! let sql = render_sql_program(&program, &Ansi);
//! assert!(sql.contains("SELECT Users.handle FROM Users WHERE Users.uid = :uid;"));
//!
//! let phi = result.correspondence.expect("success carries the correspondence");
//! let script = migration_script(&source_schema, &target_schema, &phi, &Ansi);
//! assert_eq!(
//!     script.statements,
//!     vec!["INSERT INTO Users (uid, handle) SELECT Users.uid, Users.nick FROM Users;".to_string()],
//! );
//! let _ = render_migration_script(&script, &Ansi);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ddl;
pub mod emit;
pub mod json;
pub mod migration;

pub use ddl::{parse_ddl, Span, SqlError};
pub use emit::{
    dialect_by_name, function_to_sql, program_to_sql, render_sql_program, schema_to_ddl, Ansi,
    Dialect, SqlFunction, Sqlite,
};
pub use json::Json;
pub use migration::{migration_script, render_migration_script, MigrationScript};
