//! # sqlbridge — the SQL boundary of the Migrator pipeline
//!
//! The synthesizer (crate `migrator`) speaks its own intermediate
//! representation ([`dbir`]). This crate connects it to the outside world:
//!
//! * [`ddl`] — parse a practical subset of SQL `CREATE TABLE` statements
//!   into a [`dbir::Schema`], with span-carrying error diagnostics;
//! * [`emit`] — render schemas back to DDL and synthesized programs as
//!   parameterized SQL, behind a [`emit::Dialect`] hook (generic ANSI,
//!   SQLite, Postgres and MySQL provided);
//! * [`migration`] — plan and generate executable data-migration scripts
//!   (staging renames, target DDL, `INSERT INTO target SELECT ... FROM
//!   source` data moves, cleanup drops) that move existing data to the
//!   refactored schema, from the winning value correspondence;
//! * [`token`] — the SQL tokenizer shared by the DDL parser and the
//!   `sqlexec` in-memory execution engine;
//! * [`json`] — a dependency-free JSON builder used by the `migrate` CLI and
//!   the experiment harness for machine-readable output.
//!
//! ## End to end
//!
//! ```
//! use migrator::{SynthesisConfig, Synthesizer};
//! use sqlbridge::emit::{render_sql_program, Ansi};
//! use sqlbridge::migration::{migration_script, render_migration_script};
//!
//! let source_schema = sqlbridge::parse_ddl(
//!     "CREATE TABLE Users (uid INTEGER PRIMARY KEY, nick TEXT);",
//! )
//! .unwrap();
//! let target_schema = sqlbridge::parse_ddl(
//!     "CREATE TABLE Users (uid INTEGER PRIMARY KEY, handle TEXT);",
//! )
//! .unwrap();
//! let source = dbir::parser::parse_program(
//!     r#"
//!     update addUser(uid: int, nick: string)
//!         INSERT INTO Users VALUES (uid: uid, nick: nick);
//!     query getUser(uid: int)
//!         SELECT nick FROM Users WHERE uid = uid;
//!     "#,
//!     &source_schema,
//! )
//! .unwrap();
//!
//! let result = Synthesizer::new(SynthesisConfig::standard())
//!     .synthesize(&source, &source_schema, &target_schema);
//! let program = result.program.expect("the rename synthesizes");
//! let sql = render_sql_program(&program, &Ansi);
//! assert!(sql.contains("SELECT Users.handle FROM Users WHERE Users.uid = :uid;"));
//!
//! let phi = result.correspondence.expect("success carries the correspondence");
//! // `Users` exists in both schemas, so the migration stages the source
//! // table under `legacy_Users`, recreates `Users` with the target columns,
//! // moves the data and drops the staged table — a script a DBA can run.
//! let script = migration_script(&source_schema, &target_schema, &phi, &Ansi);
//! assert_eq!(
//!     script.preamble[0],
//!     "ALTER TABLE Users RENAME TO legacy_Users;".to_string(),
//! );
//! assert_eq!(
//!     script.statements,
//!     vec![
//!         "INSERT INTO Users (uid, handle) SELECT legacy_Users.uid, legacy_Users.nick \
//!          FROM legacy_Users;"
//!             .to_string()
//!     ],
//! );
//! assert_eq!(script.cleanup, vec!["DROP TABLE legacy_Users;".to_string()]);
//! let _ = render_migration_script(&script, &Ansi);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ddl;
pub mod emit;
pub mod json;
pub mod migration;
pub mod token;

pub use ddl::parse_ddl;
pub use emit::{
    dialect_by_name, function_to_sql, instance_inserts, program_to_sql, render_sql_program,
    schema_to_ddl, value_literal, Ansi, Dialect, MySql, Postgres, SqlFunction, Sqlite,
};
pub use json::Json;
pub use migration::{
    migration_plan, migration_script, render_migration_plan, render_migration_script, ColumnFill,
    MigrationPlan, MigrationScript, PlannedInsert,
};
pub use token::{Span, SqlError};
