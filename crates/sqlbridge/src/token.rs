//! The SQL tokenizer shared by the DDL parser ([`crate::ddl`]) and the
//! in-memory SQL execution engine (crate `sqlexec`).
//!
//! Tokens carry the half-open source [`Span`] they were read from, so every
//! consumer can produce [`SqlError`] diagnostics that point into the
//! offending SQL text.

use std::fmt;

/// A half-open region of the SQL source, in 1-based line/column coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Line of the first character (1-based).
    pub line: usize,
    /// Column of the first character (1-based).
    pub column: usize,
    /// Length of the region in characters (at least 1).
    pub len: usize,
}

impl Span {
    /// A one-character span at the given position.
    pub fn point(line: usize, column: usize) -> Span {
        Span {
            line,
            column,
            len: 1,
        }
    }
}

/// A SQL parse, validation or execution error with the source span it arose
/// from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    /// What went wrong.
    pub message: String,
    /// Where it went wrong.
    pub span: Span,
    /// The full source line the span points into (for rendering).
    pub source_line: String,
}

impl SqlError {
    /// Creates an error pointing at `span` of `source`.
    pub fn new(message: impl Into<String>, span: Span, source: &str) -> SqlError {
        SqlError {
            message: message.into(),
            span,
            source_line: source
                .lines()
                .nth(span.line.saturating_sub(1))
                .unwrap_or("")
                .to_string(),
        }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error: {}", self.message)?;
        writeln!(f, " --> {}:{}", self.span.line, self.span.column)?;
        writeln!(f, "  |")?;
        writeln!(f, "  | {}", self.source_line)?;
        write!(
            f,
            "  | {}{}",
            " ".repeat(self.span.column.saturating_sub(1)),
            "^".repeat(self.span.len.max(1))
        )
    }
}

impl std::error::Error for SqlError {}

/// What kind of token was read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword. `quoted` distinguishes `"unique"` (always a
    /// plain identifier) from `unique` (a keyword in keyword position).
    Ident {
        /// The identifier text (quotes stripped).
        text: String,
        /// `true` if the identifier was quoted in the source.
        quoted: bool,
    },
    /// An unsigned numeric literal (digits and dots, as written).
    Number(String),
    /// A string literal (quotes stripped, `''` unescaped).
    StringLit(String),
    /// A single punctuation character.
    Punct(char),
}

/// One token plus the source span it was read from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was read.
    pub kind: TokenKind,
    /// Where it was read from.
    pub span: Span,
}

impl Token {
    /// The identifier text if this is an (unquoted or quoted) identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident { text, .. } => Some(text),
            _ => None,
        }
    }

    /// True if the token is the given keyword, case-insensitively. A quoted
    /// identifier (`"unique"`) is never a keyword, so reserved names that
    /// [`crate::emit::Dialect::ident`] quotes on emission re-parse as plain
    /// identifiers.
    pub fn is_kw(&self, kw: &str) -> bool {
        match &self.kind {
            TokenKind::Ident {
                text,
                quoted: false,
            } => text.eq_ignore_ascii_case(kw),
            _ => false,
        }
    }

    /// True if the token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// True if the token is an auto-increment column constraint
    /// (`AUTOINCREMENT` / `AUTO_INCREMENT`), which — like
    /// `GENERATED ... AS IDENTITY` and `SERIAL` — marks the column as a
    /// system-minted surrogate key (`DataType::Id`).
    ///
    /// Shared here because **two** `CREATE TABLE` parsers consume it: the
    /// schema-ingestion parser (`sqlbridge::ddl`) and the execution
    /// engine's (`sqlexec::engine`). Both must agree on the Id mapping or
    /// the validator would execute DDL under different column types than
    /// synthesis saw.
    pub fn is_auto_increment_kw(&self) -> bool {
        self.is_kw("AUTOINCREMENT") || self.is_kw("AUTO_INCREMENT")
    }
}

/// Tokenizes a SQL script.
///
/// Handles `--` line comments, `/* ... */` block comments, `'...'` string
/// literals with `''` escapes and the quoted-identifier styles `"t"`,
/// `` `t` `` and `[t]`.
///
/// # Errors
///
/// Returns a [`SqlError`] on unterminated comments, literals or quoted
/// identifiers, and on characters outside the SQL subset.
pub fn tokenize(source: &str) -> Result<Vec<Token>, SqlError> {
    let mut tokens = Vec::new();
    let mut chars = source.chars().peekable();
    let (mut line, mut column) = (1usize, 1usize);

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if c == Some('\n') {
                line += 1;
                column = 1;
            } else if c.is_some() {
                column += 1;
            }
            c
        }};
    }

    while let Some(&c) = chars.peek() {
        let span_start = Span::point(line, column);
        match c {
            c if c.is_whitespace() => {
                bump!();
            }
            '-' => {
                bump!();
                if chars.peek() == Some(&'-') {
                    while chars.peek().is_some_and(|&c| c != '\n') {
                        bump!();
                    }
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Punct('-'),
                        span: span_start,
                    });
                }
            }
            '/' => {
                bump!();
                if chars.peek() == Some(&'*') {
                    bump!();
                    let mut closed = false;
                    while let Some(c) = bump!() {
                        if c == '*' && chars.peek() == Some(&'/') {
                            bump!();
                            closed = true;
                            break;
                        }
                    }
                    if !closed {
                        return Err(SqlError::new(
                            "unterminated block comment",
                            span_start,
                            source,
                        ));
                    }
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Punct('/'),
                        span: span_start,
                    });
                }
            }
            '\'' => {
                bump!();
                let mut text = String::new();
                loop {
                    match bump!() {
                        Some('\'') => {
                            // '' is an escaped quote inside a string literal.
                            if chars.peek() == Some(&'\'') {
                                bump!();
                                text.push('\'');
                            } else {
                                break;
                            }
                        }
                        Some(c) => text.push(c),
                        None => {
                            return Err(SqlError::new(
                                "unterminated string literal",
                                span_start,
                                source,
                            ))
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::StringLit(text.clone()),
                    span: Span {
                        len: text.chars().count() + 2,
                        ..span_start
                    },
                });
            }
            '"' | '`' | '[' => {
                let close = match c {
                    '[' => ']',
                    c => c,
                };
                bump!();
                let mut text = String::new();
                loop {
                    match bump!() {
                        Some(c) if c == close => break,
                        Some(c) => text.push(c),
                        None => {
                            return Err(SqlError::new(
                                format!("unterminated quoted identifier (missing `{close}`)"),
                                span_start,
                                source,
                            ))
                        }
                    }
                }
                tokens.push(Token {
                    span: Span {
                        len: text.chars().count() + 2,
                        ..span_start
                    },
                    kind: TokenKind::Ident { text, quoted: true },
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut text = String::new();
                while chars
                    .peek()
                    .is_some_and(|&c| c.is_ascii_alphanumeric() || c == '_')
                {
                    text.push(bump!().expect("peeked"));
                }
                tokens.push(Token {
                    span: Span {
                        len: text.chars().count(),
                        ..span_start
                    },
                    kind: TokenKind::Ident {
                        text,
                        quoted: false,
                    },
                });
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                while chars
                    .peek()
                    .is_some_and(|&c| c.is_ascii_digit() || c == '.')
                {
                    text.push(bump!().expect("peeked"));
                }
                tokens.push(Token {
                    kind: TokenKind::Number(text.clone()),
                    span: Span {
                        len: text.chars().count(),
                        ..span_start
                    },
                });
            }
            '(' | ')' | ',' | ';' | '.' | '<' | '>' | '=' | '*' | '+' | '?' | ':' | '$' => {
                bump!();
                tokens.push(Token {
                    kind: TokenKind::Punct(c),
                    span: span_start,
                });
            }
            other => {
                return Err(SqlError::new(
                    format!("unexpected character `{other}`"),
                    span_start,
                    source,
                ));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_placeholders_and_operators() {
        let tokens = tokenize("SELECT a FROM t WHERE x <= ?1 AND y = :name AND z = $2").unwrap();
        assert!(tokens.iter().any(|t| t.is_punct('?')));
        assert!(tokens.iter().any(|t| t.is_punct(':')));
        assert!(tokens.iter().any(|t| t.is_punct('$')));
        assert!(tokens.iter().any(|t| t.is_punct('<')));
    }

    #[test]
    fn keywords_are_case_insensitive_but_quoted_idents_are_not_keywords() {
        let tokens = tokenize(r#"select "SELECT""#).unwrap();
        assert!(tokens[0].is_kw("SELECT"));
        assert!(!tokens[1].is_kw("SELECT"));
        assert_eq!(tokens[1].ident(), Some("SELECT"));
    }

    #[test]
    fn string_literal_escapes_unfold() {
        let tokens = tokenize("'o''hara'").unwrap();
        assert_eq!(tokens[0].kind, TokenKind::StringLit("o'hara".to_string()));
    }

    #[test]
    fn spans_point_at_the_source() {
        let err = tokenize("a\n  @").unwrap_err();
        assert_eq!(err.span.line, 2);
        assert_eq!(err.span.column, 3);
        assert!(err.to_string().contains("^"));
    }
}
