//! Data-migration script generation: `INSERT INTO target SELECT ... FROM
//! source` statements that move existing rows into the refactored schema.
//!
//! The synthesized program migrates the *application*; the script generated
//! here migrates the *data already stored* under the source schema, in the
//! spirit of the follow-up work on Datalog-based data migration (Wang et
//! al., 2020). The winning [`ValueCorrespondence`] says which target column
//! each source column feeds; this module turns it into SQL:
//!
//! * target columns fed by the same source table (or by source tables
//!   joinable in the source schema) are filled by one `INSERT ... SELECT`;
//! * a target column fed by several unrelated source tables (e.g. a shared
//!   `Picture.Pic` collecting instructor *and* TA pictures) produces one
//!   `INSERT ... SELECT` per source — a union of row sets;
//! * unmapped target identifier columns that link target tables (fresh
//!   surrogate keys) are populated with a deterministic skolem expression
//!   `key * N + i` derived from the feeding source table's *integer* key, so
//!   the same source row yields the same surrogate key in every target
//!   table. A source whose only key is an `id` column (emitted as UUID in
//!   DDL) cannot seed the arithmetic; its link column is skipped with a
//!   note instead of emitting invalid UUID arithmetic.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use dbir::schema::{QualifiedAttr, Schema, TableDef};
use dbir::{DataType, TableName};
use migrator::ValueCorrespondence;

use crate::emit::Dialect;

/// A generated data-migration script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationScript {
    /// `INSERT INTO ... SELECT ...` statements, in an order that respects
    /// target foreign keys where possible.
    pub statements: Vec<String>,
    /// Human-readable caveats (skipped columns, manual steps).
    pub notes: Vec<String>,
}

impl MigrationScript {
    /// True if the script moves no data at all.
    pub fn is_empty(&self) -> bool {
        self.statements.is_empty()
    }
}

/// One `INSERT ... SELECT` in the making: a set of joinable source tables
/// and the target columns they fill.
#[derive(Debug)]
struct Group {
    /// Source tables, in join order; the first is the anchor whose key seeds
    /// skolem expressions.
    tables: Vec<TableName>,
    /// `(target column, select expression source)` pairs.
    assignments: Vec<(QualifiedAttr, QualifiedAttr)>,
}

impl Group {
    fn has_target_column(&self, column: &QualifiedAttr) -> bool {
        self.assignments.iter().any(|(t, _)| t == column)
    }
}

/// The key column used to derive surrogate identifiers for rows of `table`:
/// the declared primary key if integer-typed, else — only when no primary
/// key is declared — the first integer column. Skolem expressions are
/// arithmetic (`key * N + tag`), so a [`DataType::Id`] column — emitted as
/// UUID in DDL — cannot seed them; and when a non-integer primary key is
/// the declared row identity, substituting an arbitrary integer column
/// would merge distinct rows onto one surrogate key, so the table yields
/// no seed at all.
fn skolem_key(table: &TableDef) -> Option<QualifiedAttr> {
    if let Some(pk) = &table.primary_key {
        let pk_is_int = table
            .columns
            .iter()
            .any(|c| &c.name == pk && c.ty == DataType::Int);
        return pk_is_int.then(|| QualifiedAttr {
            table: table.name.clone(),
            attr: pk.clone(),
        });
    }
    table
        .columns
        .iter()
        .find(|c| c.ty == DataType::Int)
        .map(|c| QualifiedAttr {
            table: table.name.clone(),
            attr: c.name.clone(),
        })
}

/// The target columns paired with `column` by a join attribute of the
/// target schema (the other ends of the links `column` participates in).
fn link_partners(target_schema: &Schema, column: &QualifiedAttr) -> Vec<QualifiedAttr> {
    let mut partners = Vec::new();
    for other in target_schema.tables() {
        if other.name == column.table {
            continue;
        }
        for (a, b) in target_schema.join_attrs(&column.table, &other.name) {
            if &a == column {
                partners.push(b);
            } else if &b == column {
                partners.push(a);
            }
        }
    }
    partners
}

/// Picks the skolem seed for the link column `column` of `group`: a source
/// key attribute readable from the group's FROM clause, plus a tag, such
/// that **both ends of the link compute the same value** for rows that
/// belong together.
///
/// Three cases, tried in order against each partner group:
///
/// 1. the two groups share a source table → both sides seed from that
///    table's key (identical expression);
/// 2. the groups are joined in the source schema → each side uses its own
///    end of the (canonically chosen) join attribute pair, tagged with the
///    smaller source-table index; the ends are equal on joined rows;
/// 3. no relation → fall back to this group's own anchor key (the linked
///    rows come from unrelated row sets, so no cross-table agreement is
///    possible anyway).
///
/// Returns `None` when no integer-typed key is available to build an
/// arithmetic skolem expression from.
fn link_skolem(
    source_schema: &Schema,
    target_schema: &Schema,
    table_groups: &[(TableName, Vec<Group>)],
    group: &Group,
    column: &QualifiedAttr,
) -> Option<(QualifiedAttr, usize)> {
    let source_index = |t: &TableName| {
        source_schema
            .tables()
            .iter()
            .position(|x| &x.name == t)
            .unwrap_or(usize::MAX)
    };
    let int_key =
        |attr: &QualifiedAttr| matches!(source_schema.attr_type(attr), Some(DataType::Int));

    for partner in link_partners(target_schema, column) {
        let Some((_, partner_groups)) = table_groups.iter().find(|(t, _)| t == &partner.table)
        else {
            continue;
        };
        for partner_group in partner_groups {
            // Case 1: a shared source table seeds both sides identically.
            let mut shared: Vec<&TableName> = group
                .tables
                .iter()
                .filter(|t| partner_group.tables.contains(t))
                .collect();
            shared.sort_by_key(|t| source_index(t));
            if let Some(&shared) = shared.first() {
                if let Some(key) = source_schema.table(shared).and_then(skolem_key) {
                    return Some((key, source_index(shared)));
                }
            }
            // Case 2: a source join pair between the groups is equal on
            // linked rows. Normalize the pair by source-table index so both
            // sides pick the same one, then use our end of it.
            let mut candidates: Vec<(usize, usize, QualifiedAttr, QualifiedAttr)> = Vec::new();
            for ours in &group.tables {
                for theirs in &partner_group.tables {
                    if ours == theirs {
                        continue;
                    }
                    for (a, b) in source_schema.join_attrs(ours, theirs) {
                        if int_key(&a) && int_key(&b) {
                            let (ia, ib) = (source_index(ours), source_index(theirs));
                            let (first, second) = if ia <= ib { (a, b) } else { (b, a) };
                            candidates.push((ia.min(ib), ia.max(ib), first, second));
                        }
                    }
                }
            }
            candidates.sort();
            if let Some((tag, _, first, second)) = candidates.into_iter().next() {
                let ours = if group.tables.contains(&first.table) {
                    first
                } else {
                    second
                };
                return Some((ours, tag));
            }
        }
    }
    // Case 3: unrelated row sets; seed from this group's own anchor.
    // `skolem_key` only yields integer columns, so no re-check is needed.
    let key = source_schema.table(&group.tables[0]).and_then(skolem_key)?;
    Some((key, source_index(&group.tables[0])))
}

/// Orders target tables so that foreign-key referenced tables are emitted
/// before their referrers (Kahn's algorithm; cycles fall back to declaration
/// order).
fn fk_order(target_schema: &Schema) -> Vec<TableName> {
    let tables: Vec<TableName> = target_schema
        .tables()
        .iter()
        .map(|t| t.name.clone())
        .collect();
    let mut emitted: Vec<TableName> = Vec::new();
    let mut remaining = tables.clone();
    while !remaining.is_empty() {
        let position = remaining.iter().position(|table| {
            // A table is ready when every table it references is emitted.
            target_schema
                .foreign_keys()
                .iter()
                .filter(|fk| &fk.from.table == table && fk.to.table != fk.from.table)
                .all(|fk| emitted.contains(&fk.to.table) || !remaining.contains(&fk.to.table))
        });
        match position {
            Some(p) => {
                let table = remaining.remove(p);
                emitted.push(table);
            }
            None => {
                // Foreign-key cycle: keep declaration order for the rest.
                emitted.append(&mut remaining);
            }
        }
    }
    emitted
}

/// Generates the data-migration script for a refactoring described by `phi`.
pub fn migration_script(
    source_schema: &Schema,
    target_schema: &Schema,
    phi: &ValueCorrespondence,
    dialect: &dyn Dialect,
) -> MigrationScript {
    let mut statements = Vec::new();
    let mut notes = Vec::new();
    let source_table_count = source_schema.table_count().max(1);

    // Pass 1: plan the INSERT groups of every target table, so link columns
    // can consult their partner table's groups during emission.
    let mut table_groups: Vec<(TableName, Vec<Group>)> = Vec::new();
    for target_name in fk_order(target_schema) {
        let target_table = target_schema
            .table(&target_name)
            .expect("fk_order yields schema tables");

        // Collect the sources feeding each column of this target table, in
        // column order (phi maps source -> targets; invert it here).
        let mut column_sources: Vec<(QualifiedAttr, Vec<QualifiedAttr>)> = target_table
            .columns
            .iter()
            .map(|c| {
                (
                    QualifiedAttr {
                        table: target_name.clone(),
                        attr: c.name.clone(),
                    },
                    Vec::new(),
                )
            })
            .collect();
        for (source, images) in phi.iter() {
            for image in images {
                if let Some((_, sources)) = column_sources.iter_mut().find(|(c, _)| c == image) {
                    sources.push(source.clone());
                }
            }
        }

        // Partition the (column, source) pairs into joinable groups.
        let mut groups: Vec<Group> = Vec::new();
        for (column, sources) in &column_sources {
            for source in sources {
                let placed = groups.iter_mut().find(|g| {
                    !g.has_target_column(column)
                        && (g.tables.contains(&source.table)
                            || g.tables
                                .iter()
                                .any(|t| source_schema.joinable(t, &source.table)))
                });
                match placed {
                    Some(group) => {
                        if !group.tables.contains(&source.table) {
                            group.tables.push(source.table.clone());
                        }
                        group.assignments.push((column.clone(), source.clone()));
                    }
                    None => groups.push(Group {
                        tables: vec![source.table.clone()],
                        assignments: vec![(column.clone(), source.clone())],
                    }),
                }
            }
        }
        if groups.is_empty() && !target_table.columns.is_empty() {
            notes.push(format!(
                "table {target_name} receives no migrated data (no source column maps to it)"
            ));
        }
        table_groups.push((target_name, groups));
    }

    // Pass 2: emit one INSERT ... SELECT per group.
    for (target_name, groups) in &table_groups {
        let target_table = target_schema
            .table(target_name)
            .expect("pass 1 yields schema tables");
        let group_count = groups.len();
        for group in groups {
            // Columns: the group's assignments plus skolem-filled link
            // columns, in target column order.
            let mut columns = Vec::new();
            let mut exprs = Vec::new();
            let mut skipped = Vec::new();
            for column_def in &target_table.columns {
                let column = QualifiedAttr {
                    table: target_name.clone(),
                    attr: column_def.name.clone(),
                };
                if let Some((_, source)) = group.assignments.iter().find(|(c, _)| c == &column) {
                    columns.push(dialect.ident(column.attr.as_str()));
                    exprs.push(format!(
                        "{}.{}",
                        dialect.ident(source.table.as_str()),
                        dialect.ident(source.attr.as_str())
                    ));
                } else if column_def.ty == DataType::Id
                    && !link_partners(target_schema, &column).is_empty()
                {
                    match link_skolem(source_schema, target_schema, &table_groups, group, &column) {
                        Some((key, tag)) => {
                            columns.push(dialect.ident(column.attr.as_str()));
                            exprs.push(format!(
                                "{}.{} * {} + {}",
                                dialect.ident(key.table.as_str()),
                                dialect.ident(key.attr.as_str()),
                                source_table_count,
                                tag
                            ));
                            notes.push(format!(
                                "{column} is a fresh surrogate key: filled with the skolem \
                                 expression {key} * {source_table_count} + {tag} so linked \
                                 rows agree across target tables"
                            ));
                        }
                        None => {
                            skipped.push(column.attr.to_string());
                        }
                    }
                } else if !group.has_target_column(&column) {
                    skipped.push(column.attr.to_string());
                }
            }
            if !skipped.is_empty() && group_count == 1 {
                notes.push(format!(
                    "columns {} of {target_name} are not migrated (left to defaults)",
                    skipped.join(", ")
                ));
            }

            // FROM clause: anchor joined to the remaining group tables.
            let mut from = dialect.ident(group.tables[0].as_str());
            let mut joined: BTreeSet<TableName> = BTreeSet::new();
            joined.insert(group.tables[0].clone());
            for table in &group.tables[1..] {
                let partner = joined
                    .iter()
                    .find(|t| source_schema.joinable(t, table))
                    .cloned();
                match partner {
                    Some(partner) => {
                        let (a, b) = source_schema.join_attrs(&partner, table)[0].clone();
                        let _ = write!(
                            from,
                            " JOIN {} ON {}.{} = {}.{}",
                            dialect.ident(table.as_str()),
                            dialect.ident(a.table.as_str()),
                            dialect.ident(a.attr.as_str()),
                            dialect.ident(b.table.as_str()),
                            dialect.ident(b.attr.as_str())
                        );
                    }
                    None => {
                        // Grouping only admits joinable tables, so this is
                        // unreachable; degrade to a cross join defensively.
                        let _ = write!(from, ", {}", dialect.ident(table.as_str()));
                    }
                }
                joined.insert(table.clone());
            }

            statements.push(format!(
                "INSERT INTO {} ({}) SELECT {} FROM {};",
                dialect.ident(target_name.as_str()),
                columns.join(", "),
                exprs.join(", "),
                from
            ));
        }
    }

    MigrationScript { statements, notes }
}

/// Renders a migration script as one SQL document wrapped in a transaction.
pub fn render_migration_script(script: &MigrationScript, dialect: &dyn Dialect) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "-- data migration script ({} dialect)", dialect.name());
    for note in &script.notes {
        let _ = writeln!(out, "-- note: {note}");
    }
    if script.is_empty() {
        let _ = writeln!(out, "-- nothing to migrate");
        return out;
    }
    let _ = writeln!(out, "BEGIN;");
    for statement in &script.statements {
        let _ = writeln!(out, "{statement}");
    }
    let _ = writeln!(out, "COMMIT;");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emit::Ansi;

    fn qa(t: &str, a: &str) -> QualifiedAttr {
        QualifiedAttr::new(t, a)
    }

    /// The paper's motivating example: pictures move into a shared table.
    #[test]
    fn motivating_example_unions_pictures_and_links_them() {
        let source = Schema::parse(
            "Class(ClassId: int, InstId: int, TaId: int)\n\
             Instructor(InstId: int, IName: string, IPic: binary)\n\
             TA(TaId: int, TName: string, TPic: binary)",
        )
        .unwrap();
        let target = Schema::parse(
            "Class(ClassId: int, InstId: int, TaId: int)\n\
             Instructor(InstId: int, IName: string, PicId: id)\n\
             TA(TaId: int, TName: string, PicId: id)\n\
             Picture(PicId: id, Pic: binary)",
        )
        .unwrap();
        let mut phi = ValueCorrespondence::new();
        for (table, attr) in [
            ("Class", "ClassId"),
            ("Class", "InstId"),
            ("Class", "TaId"),
            ("Instructor", "InstId"),
            ("Instructor", "IName"),
            ("TA", "TaId"),
            ("TA", "TName"),
        ] {
            phi.add(qa(table, attr), qa(table, attr));
        }
        phi.add(qa("Instructor", "IPic"), qa("Picture", "Pic"));
        phi.add(qa("TA", "TPic"), qa("Picture", "Pic"));

        let script = migration_script(&source, &target, &phi, &Ansi);
        // Two picture sources -> two INSERTs into Picture; one INSERT for
        // each of the other three tables.
        assert_eq!(script.statements.len(), 5, "{:#?}", script.statements);
        let picture: Vec<&String> = script
            .statements
            .iter()
            .filter(|s| s.starts_with("INSERT INTO Picture"))
            .collect();
        assert_eq!(picture.len(), 2);
        // Instructor pictures and instructor rows share the skolem key, so
        // the link survives migration (source table count 3, Instructor is
        // source table index 1, TA index 2).
        assert!(
            picture[0].contains("Instructor.InstId * 3 + 1"),
            "{}",
            picture[0]
        );
        assert!(picture[1].contains("TA.TaId * 3 + 2"), "{}", picture[1]);
        let instructor = script
            .statements
            .iter()
            .find(|s| s.starts_with("INSERT INTO Instructor"))
            .unwrap();
        assert!(
            instructor.contains("Instructor.InstId * 3 + 1"),
            "{instructor}"
        );
        assert!(
            instructor.contains("(InstId, IName, PicId)"),
            "{instructor}"
        );
    }

    #[test]
    fn joinable_sources_merge_into_one_select() {
        let source = Schema::parse(
            "Person(pid: int, name: string)\n\
             Address(pid: int, city: string)",
        )
        .unwrap();
        let target = Schema::parse("Contact(pid: int, name: string, city: string)").unwrap();
        let mut phi = ValueCorrespondence::new();
        phi.add(qa("Person", "pid"), qa("Contact", "pid"));
        phi.add(qa("Person", "name"), qa("Contact", "name"));
        phi.add(qa("Address", "city"), qa("Contact", "city"));

        let script = migration_script(&source, &target, &phi, &Ansi);
        assert_eq!(script.statements.len(), 1, "{:#?}", script.statements);
        assert_eq!(
            script.statements[0],
            "INSERT INTO Contact (pid, name, city) SELECT Person.pid, Person.name, \
             Address.city FROM Person JOIN Address ON Person.pid = Address.pid;"
        );
    }

    #[test]
    fn fk_referenced_tables_are_filled_first() {
        let source = Schema::parse("U(uid: int, uname: string, grp: string)").unwrap();
        let mut target = Schema::parse(
            "Account(uid: int, grp_id: id, uname: string)\n\
             Grp(grp_id: id, gname: string)",
        )
        .unwrap();
        target
            .add_foreign_key(qa("Account", "grp_id"), qa("Grp", "grp_id"))
            .unwrap();
        let mut phi = ValueCorrespondence::new();
        phi.add(qa("U", "uid"), qa("Account", "uid"));
        phi.add(qa("U", "uname"), qa("Account", "uname"));
        phi.add(qa("U", "grp"), qa("Grp", "gname"));

        let script = migration_script(&source, &target, &phi, &Ansi);
        assert_eq!(script.statements.len(), 2);
        assert!(script.statements[0].starts_with("INSERT INTO Grp"));
        assert!(script.statements[1].starts_with("INSERT INTO Account"));
        // Both sides of the link carry the same skolem expression.
        assert!(script.statements[0].contains("U.uid * 1 + 0"));
        assert!(script.statements[1].contains("U.uid * 1 + 0"));
    }

    /// Regression: when the referencing and referenced target tables draw
    /// from *different but joinable* source tables, both sides of the link
    /// must seed their surrogate key from the shared join attribute (with a
    /// common tag), or every foreign key in the migrated data dangles.
    #[test]
    fn linked_tables_with_different_anchors_share_the_join_key() {
        let source = Schema::parse(
            "Person(pid: int, name: string)\n\
             Address(pid: int, city: string)",
        )
        .unwrap();
        let mut target = Schema::parse(
            "Account(pid: int, name: string, addr_id: id)\n\
             Addr(addr_id: id, city: string)",
        )
        .unwrap();
        target
            .add_foreign_key(qa("Account", "addr_id"), qa("Addr", "addr_id"))
            .unwrap();
        let mut phi = ValueCorrespondence::new();
        phi.add(qa("Person", "pid"), qa("Account", "pid"));
        phi.add(qa("Person", "name"), qa("Account", "name"));
        phi.add(qa("Address", "city"), qa("Addr", "city"));

        let script = migration_script(&source, &target, &phi, &Ansi);
        assert_eq!(script.statements.len(), 2, "{:#?}", script.statements);
        // Account's group anchors at Person, Addr's at Address — but the
        // link expressions must coincide on joined rows: each side uses its
        // own end of Person.pid = Address.pid with the same tag.
        let addr = script
            .statements
            .iter()
            .find(|s| s.starts_with("INSERT INTO Addr "))
            .unwrap();
        let account = script
            .statements
            .iter()
            .find(|s| s.starts_with("INSERT INTO Account "))
            .unwrap();
        assert!(addr.contains("Address.pid * 2 + 0"), "{addr}");
        assert!(account.contains("Person.pid * 2 + 0"), "{account}");
    }

    /// Regression: a source keyed only by `id` (UUID) columns must not seed
    /// the skolem arithmetic — `uuid * N + tag` is invalid SQL in most
    /// engines. The link column is skipped and noted instead.
    #[test]
    fn uuid_only_keys_skip_skolem_arithmetic() {
        let source = Schema::parse(
            "Person(pid: id, name: string)\n\
             Address(pid: id, city: string)",
        )
        .unwrap();
        let mut target = Schema::parse(
            "Account(name: string, addr_id: id)\n\
             Addr(addr_id: id, city: string)",
        )
        .unwrap();
        target
            .add_foreign_key(qa("Account", "addr_id"), qa("Addr", "addr_id"))
            .unwrap();
        let mut phi = ValueCorrespondence::new();
        phi.add(qa("Person", "name"), qa("Account", "name"));
        phi.add(qa("Address", "city"), qa("Addr", "city"));

        let script = migration_script(&source, &target, &phi, &Ansi);
        assert!(
            script.statements.iter().all(|s| !s.contains('*')),
            "{:#?}",
            script.statements
        );
        assert!(
            script
                .notes
                .iter()
                .any(|n| n.contains("addr_id") && n.contains("not migrated")),
            "{:#?}",
            script.notes
        );
    }

    /// Regression: a declared non-integer primary key is the row identity;
    /// seeding the skolem expression from some other integer column (here
    /// `age`, not unique) would merge distinct rows onto one surrogate key.
    #[test]
    fn non_integer_primary_key_does_not_seed_from_arbitrary_int_column() {
        let mut source = Schema::new();
        source
            .add_table(
                TableDef::new(
                    "Person",
                    vec![("name", DataType::String), ("age", DataType::Int)],
                )
                .with_primary_key("name"),
            )
            .unwrap();
        let mut target = Schema::parse(
            "Account(name: string, addr_id: id)\n\
             Addr(addr_id: id, age: int)",
        )
        .unwrap();
        target
            .add_foreign_key(qa("Account", "addr_id"), qa("Addr", "addr_id"))
            .unwrap();
        let mut phi = ValueCorrespondence::new();
        phi.add(qa("Person", "name"), qa("Account", "name"));
        phi.add(qa("Person", "age"), qa("Addr", "age"));

        let script = migration_script(&source, &target, &phi, &Ansi);
        assert!(
            script.statements.iter().all(|s| !s.contains('*')),
            "{:#?}",
            script.statements
        );
        assert!(
            script
                .notes
                .iter()
                .any(|n| n.contains("addr_id") && n.contains("not migrated")),
            "{:#?}",
            script.notes
        );
    }

    #[test]
    fn unmapped_tables_and_columns_are_noted() {
        let source = Schema::parse("A(x: int)").unwrap();
        let target = Schema::parse("B(x: int, extra: string)\nEmptyT(y: int)").unwrap();
        let mut phi = ValueCorrespondence::new();
        phi.add(qa("A", "x"), qa("B", "x"));
        let script = migration_script(&source, &target, &phi, &Ansi);
        assert_eq!(script.statements.len(), 1);
        assert!(script
            .notes
            .iter()
            .any(|n| n.contains("extra") && n.contains("not migrated")));
        assert!(script.notes.iter().any(|n| n.contains("EmptyT")));
        let rendered = render_migration_script(&script, &Ansi);
        assert!(rendered.contains("BEGIN;"));
        assert!(rendered.contains("COMMIT;"));
        assert!(rendered.contains("-- note:"));
    }

    #[test]
    fn empty_correspondence_produces_empty_script() {
        let source = Schema::parse("A(x: int)").unwrap();
        let target = Schema::parse("B(y: int)").unwrap();
        let script = migration_script(&source, &target, &ValueCorrespondence::new(), &Ansi);
        assert!(script.is_empty());
        let rendered = render_migration_script(&script, &Ansi);
        assert!(rendered.contains("nothing to migrate"));
    }
}
