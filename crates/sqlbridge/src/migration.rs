//! Data-migration planning and script generation: `INSERT INTO target
//! SELECT ... FROM source` statements that move existing rows into the
//! refactored schema.
//!
//! The synthesized program migrates the *application*; the plan built here
//! migrates the *data already stored* under the source schema, in the
//! spirit of the follow-up work on Datalog-based data migration (Wang et
//! al., 2020). The winning [`ValueCorrespondence`] says which target column
//! each source column feeds; [`migration_plan`] turns it into an explicit
//! [`MigrationPlan`]:
//!
//! * target columns fed by the same source table (or by source tables
//!   joinable in the source schema) are filled by one [`PlannedInsert`];
//! * a target column fed by several unrelated source tables (e.g. a shared
//!   `Picture.Pic` collecting instructor *and* TA pictures) produces one
//!   insert per source — a union of row sets;
//! * unmapped target identifier columns that link target tables (fresh
//!   surrogate keys) are populated with a deterministic skolem expression
//!   `key * N + i` derived from the feeding source table's *integer* key, so
//!   the same source row yields the same surrogate key in every target
//!   table. A source whose only key is an `id` column (emitted as UUID in
//!   DDL) cannot seed the arithmetic; its link column is skipped with a
//!   note instead of emitting invalid UUID arithmetic.
//!
//! The plan has two independent consumers, which is what makes the emitted
//! SQL testable end-to-end: [`migration_script`] renders it as executable
//! SQL, and the `sqlexec` crate evaluates the same plan directly over a
//! [`dbir::Instance`] to predict the target instance the SQL must produce.
//!
//! [`migration_script`] produces a script a DBA can actually run against a
//! database holding the source schema and its data: source tables whose
//! name collides with a target table are first renamed to a staging name
//! (`legacy_<name>`), the target tables are created, the `INSERT ..
//! SELECT`s move the data (reading staged names where applicable), and a
//! cleanup phase drops the staged and source-only tables **whose rows the
//! migration moved**. A source table no insert reads is never dropped —
//! the migration copied none of its rows, so dropping it would destroy
//! data — and a note tells the DBA to deal with it manually.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use dbir::schema::{QualifiedAttr, Schema, TableDef};
use dbir::{DataType, TableName};
use migrator::ValueCorrespondence;

use crate::emit::{schema_to_ddl, Dialect};

/// How one target column of a [`PlannedInsert`] is filled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnFill {
    /// Copied from a source attribute readable in the insert's FROM clause.
    Source(QualifiedAttr),
    /// Fresh surrogate key: the skolem expression `key * factor + tag`,
    /// where `key` is an integer attribute readable in the FROM clause.
    Skolem {
        /// The integer source attribute seeding the expression.
        key: QualifiedAttr,
        /// The multiplier (the number of source tables), keeping tags from
        /// different source tables disjoint.
        factor: usize,
        /// The tag identifying which source table seeded the key.
        tag: usize,
    },
}

/// One planned `INSERT INTO target SELECT ... FROM sources` of a migration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedInsert {
    /// The target table receiving rows.
    pub target: TableName,
    /// Source tables in join order; the first is the anchor.
    pub tables: Vec<TableName>,
    /// For each table after the anchor, the equi-join condition linking it
    /// to an earlier table of the chain (`None` degrades to a cross join;
    /// unreachable in practice because grouping only admits joinable
    /// tables).
    pub joins: Vec<Option<(QualifiedAttr, QualifiedAttr)>>,
    /// `(target column, fill)` pairs in target column order. Target columns
    /// with no fill (unmapped, un-skolemizable) are simply absent.
    pub columns: Vec<(QualifiedAttr, ColumnFill)>,
}

/// A source table staged under a fresh name because a target table takes
/// its name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagedRename {
    /// The source table being renamed.
    pub table: TableName,
    /// The staging name the migration reads it under.
    pub staged: String,
    /// Whether cleanup drops the staged table. Only tables whose rows the
    /// migration actually moved are dropped; a staged table the migration
    /// never read keeps the data nothing else holds.
    pub drop_after: bool,
}

/// A complete data-migration plan for one refactoring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationPlan {
    /// The planned inserts, ordered so foreign-key referenced target tables
    /// are filled before their referrers.
    pub inserts: Vec<PlannedInsert>,
    /// Source tables whose name collides with a target table, staged under
    /// fresh names while the migration runs.
    pub renames: Vec<StagedRename>,
    /// Source tables absent from the target schema whose rows the
    /// migration moved, dropped after the data moves. Source tables the
    /// migration never reads are kept (see [`MigrationPlan::notes`]).
    pub dropped_sources: Vec<TableName>,
    /// Human-readable caveats (skipped columns, manual steps).
    pub notes: Vec<String>,
}

impl MigrationPlan {
    /// The staging name a source table is read under while the migration
    /// runs (its own name unless it collides with a target table).
    pub fn effective_name(&self, table: &TableName) -> &str {
        self.renames
            .iter()
            .find(|r| &r.table == table)
            .map(|r| r.staged.as_str())
            .unwrap_or_else(|| table.as_str())
    }
}

/// A generated data-migration script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationScript {
    /// Statements preparing the schemas: staging renames of colliding
    /// source tables, then `CREATE TABLE` DDL for every target table.
    pub preamble: Vec<String>,
    /// `INSERT INTO ... SELECT ...` statements, in an order that respects
    /// target foreign keys where possible.
    pub statements: Vec<String>,
    /// Statements dropping staged and source-only tables once the data has
    /// moved, leaving exactly the target schema.
    pub cleanup: Vec<String>,
    /// Human-readable caveats (skipped columns, manual steps).
    pub notes: Vec<String>,
}

impl MigrationScript {
    /// True if the script does nothing at all — no data moves and (by
    /// construction, see [`render_migration_plan`]) no schema changes.
    pub fn is_empty(&self) -> bool {
        self.statements.is_empty() && self.preamble.is_empty() && self.cleanup.is_empty()
    }

    /// Every statement of the script in execution order (preamble, data
    /// moves, cleanup).
    pub fn all_statements(&self) -> impl Iterator<Item = &String> {
        self.preamble
            .iter()
            .chain(self.statements.iter())
            .chain(self.cleanup.iter())
    }
}

/// One `INSERT ... SELECT` in the making: a set of joinable source tables
/// and the target columns they fill.
#[derive(Debug)]
struct Group {
    /// Source tables, in join order; the first is the anchor whose key seeds
    /// skolem expressions.
    tables: Vec<TableName>,
    /// `(target column, select expression source)` pairs.
    assignments: Vec<(QualifiedAttr, QualifiedAttr)>,
}

impl Group {
    fn has_target_column(&self, column: &QualifiedAttr) -> bool {
        self.assignments.iter().any(|(t, _)| t == column)
    }
}

/// The key column used to derive surrogate identifiers for rows of `table`:
/// the declared primary key if integer-typed, else — only when no primary
/// key is declared — the first integer column. Skolem expressions are
/// arithmetic (`key * N + tag`), so a [`DataType::Id`] column — emitted as
/// UUID in DDL — cannot seed them; and when a non-integer primary key is
/// the declared row identity, substituting an arbitrary integer column
/// would merge distinct rows onto one surrogate key, so the table yields
/// no seed at all.
fn skolem_key(table: &TableDef) -> Option<QualifiedAttr> {
    if let Some(pk) = &table.primary_key {
        let pk_is_int = table
            .columns
            .iter()
            .any(|c| &c.name == pk && c.ty == DataType::Int);
        return pk_is_int.then(|| QualifiedAttr {
            table: table.name,
            attr: pk.clone(),
        });
    }
    table
        .columns
        .iter()
        .find(|c| c.ty == DataType::Int)
        .map(|c| QualifiedAttr {
            table: table.name,
            attr: c.name.clone(),
        })
}

/// The target columns paired with `column` by a join attribute of the
/// target schema (the other ends of the links `column` participates in).
fn link_partners(target_schema: &Schema, column: &QualifiedAttr) -> Vec<QualifiedAttr> {
    let mut partners = Vec::new();
    for other in target_schema.tables() {
        if other.name == column.table {
            continue;
        }
        for (a, b) in target_schema.join_attrs(&column.table, &other.name) {
            if &a == column {
                partners.push(b);
            } else if &b == column {
                partners.push(a);
            }
        }
    }
    partners
}

/// Picks the skolem seed for the link column `column` of `group`: a source
/// key attribute readable from the group's FROM clause, plus a tag, such
/// that **both ends of the link compute the same value** for rows that
/// belong together.
///
/// Three cases, tried in order against each partner group:
///
/// 1. the two groups share a source table → both sides seed from that
///    table's key (identical expression);
/// 2. the groups are joined in the source schema → each side uses its own
///    end of the (canonically chosen) join attribute pair, tagged with the
///    smaller source-table index; the ends are equal on joined rows;
/// 3. no relation → fall back to this group's own anchor key (the linked
///    rows come from unrelated row sets, so no cross-table agreement is
///    possible anyway).
///
/// Returns `None` when no integer-typed key is available to build an
/// arithmetic skolem expression from.
fn link_skolem(
    source_schema: &Schema,
    target_schema: &Schema,
    table_groups: &[(TableName, Vec<Group>)],
    group: &Group,
    column: &QualifiedAttr,
) -> Option<(QualifiedAttr, usize)> {
    let source_index = |t: &TableName| {
        source_schema
            .tables()
            .iter()
            .position(|x| &x.name == t)
            .unwrap_or(usize::MAX)
    };
    let int_key =
        |attr: &QualifiedAttr| matches!(source_schema.attr_type(attr), Some(DataType::Int));

    for partner in link_partners(target_schema, column) {
        let Some((_, partner_groups)) = table_groups.iter().find(|(t, _)| t == &partner.table)
        else {
            continue;
        };
        for partner_group in partner_groups {
            // Case 1: a shared source table seeds both sides identically.
            let mut shared: Vec<&TableName> = group
                .tables
                .iter()
                .filter(|t| partner_group.tables.contains(t))
                .collect();
            shared.sort_by_key(|t| source_index(t));
            if let Some(&shared) = shared.first() {
                if let Some(key) = source_schema.table(shared).and_then(skolem_key) {
                    return Some((key, source_index(shared)));
                }
            }
            // Case 2: a source join pair between the groups is equal on
            // linked rows. Normalize the pair by source-table index so both
            // sides pick the same one, then use our end of it.
            let mut candidates: Vec<(usize, usize, QualifiedAttr, QualifiedAttr)> = Vec::new();
            for ours in &group.tables {
                for theirs in &partner_group.tables {
                    if ours == theirs {
                        continue;
                    }
                    for (a, b) in source_schema.join_attrs(ours, theirs) {
                        if int_key(&a) && int_key(&b) {
                            let (ia, ib) = (source_index(ours), source_index(theirs));
                            let (first, second) = if ia <= ib { (a, b) } else { (b, a) };
                            candidates.push((ia.min(ib), ia.max(ib), first, second));
                        }
                    }
                }
            }
            candidates.sort();
            if let Some((tag, _, first, second)) = candidates.into_iter().next() {
                let ours = if group.tables.contains(&first.table) {
                    first
                } else {
                    second
                };
                return Some((ours, tag));
            }
        }
    }
    // Case 3: unrelated row sets; seed from this group's own anchor.
    // `skolem_key` only yields integer columns, so no re-check is needed.
    let key = source_schema.table(&group.tables[0]).and_then(skolem_key)?;
    Some((key, source_index(&group.tables[0])))
}

/// Orders target tables so that foreign-key referenced tables are emitted
/// before their referrers (Kahn's algorithm; cycles fall back to declaration
/// order).
fn fk_order(target_schema: &Schema) -> Vec<TableName> {
    let tables: Vec<TableName> = target_schema.tables().iter().map(|t| t.name).collect();
    let mut emitted: Vec<TableName> = Vec::new();
    let mut remaining = tables.clone();
    while !remaining.is_empty() {
        let position = remaining.iter().position(|table| {
            // A table is ready when every table it references is emitted.
            target_schema
                .foreign_keys()
                .iter()
                .filter(|fk| &fk.from.table == table && fk.to.table != fk.from.table)
                .all(|fk| emitted.contains(&fk.to.table) || !remaining.contains(&fk.to.table))
        });
        match position {
            Some(p) => {
                let table = remaining.remove(p);
                emitted.push(table);
            }
            None => {
                // Foreign-key cycle: keep declaration order for the rest.
                emitted.append(&mut remaining);
            }
        }
    }
    emitted
}

/// Builds the data-migration plan for a refactoring described by `phi`.
pub fn migration_plan(
    source_schema: &Schema,
    target_schema: &Schema,
    phi: &ValueCorrespondence,
) -> MigrationPlan {
    let mut notes = Vec::new();
    let source_table_count = source_schema.table_count().max(1);

    // Pass 1: plan the INSERT groups of every target table, so link columns
    // can consult their partner table's groups during fill selection.
    let mut table_groups: Vec<(TableName, Vec<Group>)> = Vec::new();
    for target_name in fk_order(target_schema) {
        let target_table = target_schema
            .table(&target_name)
            .expect("fk_order yields schema tables");

        // Collect the sources feeding each column of this target table, in
        // column order (phi maps source -> targets; invert it here).
        let mut column_sources: Vec<(QualifiedAttr, Vec<QualifiedAttr>)> = target_table
            .columns
            .iter()
            .map(|c| {
                (
                    QualifiedAttr {
                        table: target_name,
                        attr: c.name.clone(),
                    },
                    Vec::new(),
                )
            })
            .collect();
        for (source, images) in phi.iter() {
            for image in images {
                if let Some((_, sources)) = column_sources.iter_mut().find(|(c, _)| c == image) {
                    sources.push(source.clone());
                }
            }
        }

        // Partition the (column, source) pairs into joinable groups.
        let mut groups: Vec<Group> = Vec::new();
        for (column, sources) in &column_sources {
            for source in sources {
                let placed = groups.iter_mut().find(|g| {
                    !g.has_target_column(column)
                        && (g.tables.contains(&source.table)
                            || g.tables
                                .iter()
                                .any(|t| source_schema.joinable(t, &source.table)))
                });
                match placed {
                    Some(group) => {
                        if !group.tables.contains(&source.table) {
                            group.tables.push(source.table);
                        }
                        group.assignments.push((column.clone(), source.clone()));
                    }
                    None => groups.push(Group {
                        tables: vec![source.table],
                        assignments: vec![(column.clone(), source.clone())],
                    }),
                }
            }
        }
        if groups.is_empty() && !target_table.columns.is_empty() {
            notes.push(format!(
                "table {target_name} receives no migrated data (no source column maps to it)"
            ));
        }
        table_groups.push((target_name, groups));
    }

    // Pass 2: decide the column fills and join chains of every group.
    let mut inserts = Vec::new();
    for (target_name, groups) in &table_groups {
        let target_table = target_schema
            .table(target_name)
            .expect("pass 1 yields schema tables");
        let group_count = groups.len();
        for group in groups {
            // Columns: the group's assignments plus skolem-filled link
            // columns, in target column order.
            let mut columns = Vec::new();
            let mut skipped = Vec::new();
            for column_def in &target_table.columns {
                let column = QualifiedAttr {
                    table: *target_name,
                    attr: column_def.name.clone(),
                };
                if let Some((_, source)) = group.assignments.iter().find(|(c, _)| c == &column) {
                    columns.push((column, ColumnFill::Source(source.clone())));
                } else if column_def.ty == DataType::Id
                    && !link_partners(target_schema, &column).is_empty()
                {
                    match link_skolem(source_schema, target_schema, &table_groups, group, &column) {
                        Some((key, tag)) => {
                            notes.push(format!(
                                "{column} is a fresh surrogate key: filled with the skolem \
                                 expression {key} * {source_table_count} + {tag} so linked \
                                 rows agree across target tables"
                            ));
                            columns.push((
                                column,
                                ColumnFill::Skolem {
                                    key,
                                    factor: source_table_count,
                                    tag,
                                },
                            ));
                        }
                        None => {
                            skipped.push(column.attr.to_string());
                        }
                    }
                } else if !group.has_target_column(&column) {
                    skipped.push(column.attr.to_string());
                }
            }
            if !skipped.is_empty() && group_count == 1 {
                notes.push(format!(
                    "columns {} of {target_name} are not migrated (left to defaults)",
                    skipped.join(", ")
                ));
            }

            // Join chain: anchor joined to the remaining group tables.
            let mut joins = Vec::new();
            let mut joined: BTreeSet<TableName> = BTreeSet::new();
            joined.insert(group.tables[0]);
            for table in &group.tables[1..] {
                let partner = joined
                    .iter()
                    .find(|t| source_schema.joinable(t, table))
                    .copied();
                joins.push(
                    partner.map(|partner| source_schema.join_attrs(&partner, table)[0].clone()),
                );
                joined.insert(*table);
            }

            inserts.push(PlannedInsert {
                target: *target_name,
                tables: group.tables.clone(),
                joins,
                columns,
            });
        }
    }

    // Staging renames for source tables colliding with a target table, and
    // drops for source tables whose rows actually moved. A table no insert
    // reads holds data the migration never copied anywhere — dropping it
    // would destroy that data, so it is left in place (under its staging
    // name when it collides) with a note telling the DBA to deal with it.
    let read_tables: BTreeSet<TableName> = inserts
        .iter()
        .flat_map(|insert| insert.tables.iter().copied())
        .collect();
    let mut taken: BTreeSet<String> = source_schema
        .tables()
        .iter()
        .chain(target_schema.tables())
        .map(|t| t.name.as_str().to_string())
        .collect();
    let mut renames = Vec::new();
    let mut dropped_sources = Vec::new();
    for source_table in source_schema.tables() {
        let read = read_tables.contains(&source_table.name);
        if target_schema.table(&source_table.name).is_some() {
            let mut staged = format!("legacy_{}", source_table.name);
            while taken.contains(&staged) {
                staged.insert(0, '_');
            }
            taken.insert(staged.clone());
            if !read {
                notes.push(format!(
                    "source table {} is staged as {staged} but NOT dropped: the migration \
                     moves none of its rows, so dropping it would destroy data",
                    source_table.name
                ));
            }
            renames.push(StagedRename {
                table: source_table.name,
                staged,
                drop_after: read,
            });
        } else if read {
            dropped_sources.push(source_table.name);
            notes.push(format!(
                "source table {} is dropped after migration (absent from the target schema)",
                source_table.name
            ));
        } else {
            notes.push(format!(
                "source table {} is NOT dropped: the migration moves none of its rows; \
                 drop it manually once its data is dealt with",
                source_table.name
            ));
        }
    }

    MigrationPlan {
        inserts,
        renames,
        dropped_sources,
        notes,
    }
}

/// Generates the executable data-migration script for a refactoring
/// described by `phi`: staging renames and target DDL, the data moves, and
/// the cleanup drops (see [`MigrationScript`]).
pub fn migration_script(
    source_schema: &Schema,
    target_schema: &Schema,
    phi: &ValueCorrespondence,
    dialect: &dyn Dialect,
) -> MigrationScript {
    let plan = migration_plan(source_schema, target_schema, phi);
    render_migration_plan(&plan, target_schema, dialect)
}

/// Renders a [`MigrationPlan`] as SQL statements in the given dialect.
pub fn render_migration_plan(
    plan: &MigrationPlan,
    target_schema: &Schema,
    dialect: &dyn Dialect,
) -> MigrationScript {
    // A plan with no data moves renders as a genuinely empty script: a
    // document announcing "nothing to migrate" must not smuggle in schema
    // mutations (renaming production tables, creating empty targets).
    if plan.inserts.is_empty() {
        let mut notes = plan.notes.clone();
        notes.push(
            "no data moves were planned; schema changes are not emitted — apply the \
             target DDL manually once the correspondence is resolved"
                .to_string(),
        );
        return MigrationScript {
            preamble: Vec::new(),
            statements: Vec::new(),
            cleanup: Vec::new(),
            notes,
        };
    }

    // A source attribute rendered against the staging name of its table.
    let attr = |a: &QualifiedAttr| {
        format!(
            "{}.{}",
            dialect.ident(plan.effective_name(&a.table)),
            dialect.ident(a.attr.as_str())
        )
    };

    let mut preamble = Vec::new();
    for rename in &plan.renames {
        preamble.push(format!(
            "ALTER TABLE {} RENAME TO {};",
            dialect.ident(rename.table.as_str()),
            dialect.ident(&rename.staged)
        ));
    }
    for statement in schema_to_ddl(target_schema, dialect).split_inclusive(");\n") {
        let statement = statement.trim();
        if !statement.is_empty() {
            preamble.push(statement.to_string());
        }
    }

    let mut statements = Vec::new();
    for insert in &plan.inserts {
        let mut columns = Vec::new();
        let mut exprs = Vec::new();
        let mut writes_id_column = false;
        for (column, fill) in &insert.columns {
            columns.push(dialect.ident(column.attr.as_str()));
            writes_id_column |= target_schema.attr_type(column) == Some(DataType::Id);
            exprs.push(match fill {
                ColumnFill::Source(source) => attr(source),
                ColumnFill::Skolem { key, factor, tag } => {
                    format!("{} * {factor} + {tag}", attr(key))
                }
            });
        }

        // FROM clause: anchor joined to the remaining insert tables.
        let mut from = dialect.ident(plan.effective_name(&insert.tables[0]));
        for (table, join) in insert.tables[1..].iter().zip(&insert.joins) {
            match join {
                Some((a, b)) => {
                    let _ = write!(
                        from,
                        " JOIN {} ON {} = {}",
                        dialect.ident(plan.effective_name(table)),
                        attr(a),
                        attr(b)
                    );
                }
                None => {
                    // Grouping only admits joinable tables, so this is
                    // unreachable; degrade to a cross join defensively.
                    let _ = write!(from, ", {}", dialect.ident(plan.effective_name(table)));
                }
            }
        }

        let overriding = if writes_id_column {
            dialect.insert_overriding_clause()
        } else {
            ""
        };
        statements.push(format!(
            "INSERT INTO {} ({}) {overriding}SELECT {} FROM {};",
            dialect.ident(insert.target.as_str()),
            columns.join(", "),
            exprs.join(", "),
            from
        ));
    }

    let mut cleanup = Vec::new();
    for rename in &plan.renames {
        if rename.drop_after {
            cleanup.push(format!("DROP TABLE {};", dialect.ident(&rename.staged)));
        }
    }
    for table in &plan.dropped_sources {
        cleanup.push(format!("DROP TABLE {};", dialect.ident(table.as_str())));
    }

    MigrationScript {
        preamble,
        statements,
        cleanup,
        notes: plan.notes.clone(),
    }
}

/// Renders a migration script as one SQL document: schema preparation, the
/// data moves wrapped in a transaction, then cleanup.
pub fn render_migration_script(script: &MigrationScript, dialect: &dyn Dialect) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "-- data migration script ({} dialect)", dialect.name());
    for note in &script.notes {
        let _ = writeln!(out, "-- note: {note}");
    }
    for statement in &script.preamble {
        let _ = writeln!(out, "{statement}");
    }
    if script.is_empty() {
        let _ = writeln!(out, "-- nothing to migrate");
    } else {
        let _ = writeln!(out, "BEGIN;");
        for statement in &script.statements {
            let _ = writeln!(out, "{statement}");
        }
        let _ = writeln!(out, "COMMIT;");
    }
    for statement in &script.cleanup {
        let _ = writeln!(out, "{statement}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emit::{Ansi, Postgres};

    fn qa(t: &str, a: &str) -> QualifiedAttr {
        QualifiedAttr::new(t, a)
    }

    /// The paper's motivating example: pictures move into a shared table.
    /// All three source tables collide with target tables, so the data
    /// moves read the staged `legacy_*` names.
    #[test]
    fn motivating_example_unions_pictures_and_links_them() {
        let source = Schema::parse(
            "Class(ClassId: int, InstId: int, TaId: int)\n\
             Instructor(InstId: int, IName: string, IPic: binary)\n\
             TA(TaId: int, TName: string, TPic: binary)",
        )
        .unwrap();
        let target = Schema::parse(
            "Class(ClassId: int, InstId: int, TaId: int)\n\
             Instructor(InstId: int, IName: string, PicId: id)\n\
             TA(TaId: int, TName: string, PicId: id)\n\
             Picture(PicId: id, Pic: binary)",
        )
        .unwrap();
        let mut phi = ValueCorrespondence::new();
        for (table, attr) in [
            ("Class", "ClassId"),
            ("Class", "InstId"),
            ("Class", "TaId"),
            ("Instructor", "InstId"),
            ("Instructor", "IName"),
            ("TA", "TaId"),
            ("TA", "TName"),
        ] {
            phi.add(qa(table, attr), qa(table, attr));
        }
        phi.add(qa("Instructor", "IPic"), qa("Picture", "Pic"));
        phi.add(qa("TA", "TPic"), qa("Picture", "Pic"));

        let script = migration_script(&source, &target, &phi, &Ansi);
        // Two picture sources -> two INSERTs into Picture; one INSERT for
        // each of the other three tables.
        assert_eq!(script.statements.len(), 5, "{:#?}", script.statements);
        let picture: Vec<&String> = script
            .statements
            .iter()
            .filter(|s| s.starts_with("INSERT INTO Picture"))
            .collect();
        assert_eq!(picture.len(), 2);
        // Instructor pictures and instructor rows share the skolem key, so
        // the link survives migration (source table count 3, Instructor is
        // source table index 1, TA index 2).
        assert!(
            picture[0].contains("legacy_Instructor.InstId * 3 + 1"),
            "{}",
            picture[0]
        );
        assert!(
            picture[1].contains("legacy_TA.TaId * 3 + 2"),
            "{}",
            picture[1]
        );
        let instructor = script
            .statements
            .iter()
            .find(|s| s.starts_with("INSERT INTO Instructor"))
            .unwrap();
        assert!(
            instructor.contains("legacy_Instructor.InstId * 3 + 1"),
            "{instructor}"
        );
        assert!(
            instructor.contains("(InstId, IName, PicId)"),
            "{instructor}"
        );
        assert!(
            instructor.contains("FROM legacy_Instructor;"),
            "{instructor}"
        );
        // All three colliding source tables are staged first and dropped at
        // the end; the target tables are created in between.
        assert!(
            script
                .preamble
                .contains(&"ALTER TABLE Instructor RENAME TO legacy_Instructor;".to_string()),
            "{:#?}",
            script.preamble
        );
        assert!(
            script
                .preamble
                .iter()
                .any(|s| s.starts_with("CREATE TABLE Picture")),
            "{:#?}",
            script.preamble
        );
        assert_eq!(
            script.cleanup,
            vec![
                "DROP TABLE legacy_Class;".to_string(),
                "DROP TABLE legacy_Instructor;".to_string(),
                "DROP TABLE legacy_TA;".to_string(),
            ]
        );
    }

    #[test]
    fn joinable_sources_merge_into_one_select() {
        let source = Schema::parse(
            "Person(pid: int, name: string)\n\
             Address(pid: int, city: string)",
        )
        .unwrap();
        let target = Schema::parse("Contact(pid: int, name: string, city: string)").unwrap();
        let mut phi = ValueCorrespondence::new();
        phi.add(qa("Person", "pid"), qa("Contact", "pid"));
        phi.add(qa("Person", "name"), qa("Contact", "name"));
        phi.add(qa("Address", "city"), qa("Contact", "city"));

        let script = migration_script(&source, &target, &phi, &Ansi);
        assert_eq!(script.statements.len(), 1, "{:#?}", script.statements);
        assert_eq!(
            script.statements[0],
            "INSERT INTO Contact (pid, name, city) SELECT Person.pid, Person.name, \
             Address.city FROM Person JOIN Address ON Person.pid = Address.pid;"
        );
        // No collisions: nothing is staged, and the source tables are
        // dropped once their data has moved.
        assert!(script.preamble.iter().all(|s| !s.starts_with("ALTER")));
        assert_eq!(
            script.cleanup,
            vec![
                "DROP TABLE Person;".to_string(),
                "DROP TABLE Address;".to_string(),
            ]
        );
    }

    #[test]
    fn fk_referenced_tables_are_filled_first() {
        let source = Schema::parse("U(uid: int, uname: string, grp: string)").unwrap();
        let mut target = Schema::parse(
            "Account(uid: int, grp_id: id, uname: string)\n\
             Grp(grp_id: id, gname: string)",
        )
        .unwrap();
        target
            .add_foreign_key(qa("Account", "grp_id"), qa("Grp", "grp_id"))
            .unwrap();
        let mut phi = ValueCorrespondence::new();
        phi.add(qa("U", "uid"), qa("Account", "uid"));
        phi.add(qa("U", "uname"), qa("Account", "uname"));
        phi.add(qa("U", "grp"), qa("Grp", "gname"));

        let script = migration_script(&source, &target, &phi, &Ansi);
        assert_eq!(script.statements.len(), 2);
        assert!(script.statements[0].starts_with("INSERT INTO Grp"));
        assert!(script.statements[1].starts_with("INSERT INTO Account"));
        // Both sides of the link carry the same skolem expression.
        assert!(script.statements[0].contains("U.uid * 1 + 0"));
        assert!(script.statements[1].contains("U.uid * 1 + 0"));
    }

    /// Regression: when the referencing and referenced target tables draw
    /// from *different but joinable* source tables, both sides of the link
    /// must seed their surrogate key from the shared join attribute (with a
    /// common tag), or every foreign key in the migrated data dangles.
    #[test]
    fn linked_tables_with_different_anchors_share_the_join_key() {
        let source = Schema::parse(
            "Person(pid: int, name: string)\n\
             Address(pid: int, city: string)",
        )
        .unwrap();
        let mut target = Schema::parse(
            "Account(pid: int, name: string, addr_id: id)\n\
             Addr(addr_id: id, city: string)",
        )
        .unwrap();
        target
            .add_foreign_key(qa("Account", "addr_id"), qa("Addr", "addr_id"))
            .unwrap();
        let mut phi = ValueCorrespondence::new();
        phi.add(qa("Person", "pid"), qa("Account", "pid"));
        phi.add(qa("Person", "name"), qa("Account", "name"));
        phi.add(qa("Address", "city"), qa("Addr", "city"));

        let script = migration_script(&source, &target, &phi, &Ansi);
        assert_eq!(script.statements.len(), 2, "{:#?}", script.statements);
        // Account's group anchors at Person, Addr's at Address — but the
        // link expressions must coincide on joined rows: each side uses its
        // own end of Person.pid = Address.pid with the same tag.
        let addr = script
            .statements
            .iter()
            .find(|s| s.starts_with("INSERT INTO Addr "))
            .unwrap();
        let account = script
            .statements
            .iter()
            .find(|s| s.starts_with("INSERT INTO Account "))
            .unwrap();
        assert!(addr.contains("Address.pid * 2 + 0"), "{addr}");
        assert!(account.contains("Person.pid * 2 + 0"), "{account}");
    }

    /// Regression: a source keyed only by `id` (UUID) columns must not seed
    /// the skolem arithmetic — `uuid * N + tag` is invalid SQL in most
    /// engines. The link column is skipped and noted instead.
    #[test]
    fn uuid_only_keys_skip_skolem_arithmetic() {
        let source = Schema::parse(
            "Person(pid: id, name: string)\n\
             Address(pid: id, city: string)",
        )
        .unwrap();
        let mut target = Schema::parse(
            "Account(name: string, addr_id: id)\n\
             Addr(addr_id: id, city: string)",
        )
        .unwrap();
        target
            .add_foreign_key(qa("Account", "addr_id"), qa("Addr", "addr_id"))
            .unwrap();
        let mut phi = ValueCorrespondence::new();
        phi.add(qa("Person", "name"), qa("Account", "name"));
        phi.add(qa("Address", "city"), qa("Addr", "city"));

        let script = migration_script(&source, &target, &phi, &Ansi);
        assert!(
            script.statements.iter().all(|s| !s.contains('*')),
            "{:#?}",
            script.statements
        );
        assert!(
            script
                .notes
                .iter()
                .any(|n| n.contains("addr_id") && n.contains("not migrated")),
            "{:#?}",
            script.notes
        );
    }

    /// Regression: a declared non-integer primary key is the row identity;
    /// seeding the skolem expression from some other integer column (here
    /// `age`, not unique) would merge distinct rows onto one surrogate key.
    #[test]
    fn non_integer_primary_key_does_not_seed_from_arbitrary_int_column() {
        let mut source = Schema::new();
        source
            .add_table(
                TableDef::new(
                    "Person",
                    vec![("name", DataType::String), ("age", DataType::Int)],
                )
                .with_primary_key("name"),
            )
            .unwrap();
        let mut target = Schema::parse(
            "Account(name: string, addr_id: id)\n\
             Addr(addr_id: id, age: int)",
        )
        .unwrap();
        target
            .add_foreign_key(qa("Account", "addr_id"), qa("Addr", "addr_id"))
            .unwrap();
        let mut phi = ValueCorrespondence::new();
        phi.add(qa("Person", "name"), qa("Account", "name"));
        phi.add(qa("Person", "age"), qa("Addr", "age"));

        let script = migration_script(&source, &target, &phi, &Ansi);
        assert!(
            script.statements.iter().all(|s| !s.contains('*')),
            "{:#?}",
            script.statements
        );
        assert!(
            script
                .notes
                .iter()
                .any(|n| n.contains("addr_id") && n.contains("not migrated")),
            "{:#?}",
            script.notes
        );
    }

    #[test]
    fn unmapped_tables_and_columns_are_noted() {
        let source = Schema::parse("A(x: int)").unwrap();
        let target = Schema::parse("B(x: int, extra: string)\nEmptyT(y: int)").unwrap();
        let mut phi = ValueCorrespondence::new();
        phi.add(qa("A", "x"), qa("B", "x"));
        let script = migration_script(&source, &target, &phi, &Ansi);
        assert_eq!(script.statements.len(), 1);
        assert!(script
            .notes
            .iter()
            .any(|n| n.contains("extra") && n.contains("not migrated")));
        assert!(script.notes.iter().any(|n| n.contains("EmptyT")));
        let rendered = render_migration_script(&script, &Ansi);
        assert!(rendered.contains("BEGIN;"));
        assert!(rendered.contains("COMMIT;"));
        assert!(rendered.contains("-- note:"));
        assert!(rendered.contains("CREATE TABLE B"), "{rendered}");
        assert!(rendered.contains("DROP TABLE A;"), "{rendered}");
    }

    #[test]
    fn empty_correspondence_produces_empty_script() {
        let source = Schema::parse("A(x: int)").unwrap();
        let target = Schema::parse("B(y: int)").unwrap();
        let script = migration_script(&source, &target, &ValueCorrespondence::new(), &Ansi);
        assert!(script.is_empty());
        assert!(script.preamble.is_empty(), "{:#?}", script.preamble);
        assert!(script.cleanup.is_empty(), "{:#?}", script.cleanup);
        let rendered = render_migration_script(&script, &Ansi);
        assert!(rendered.contains("nothing to migrate"));
        // The "nothing to migrate" document must not smuggle in schema
        // mutations.
        assert!(!rendered.contains("CREATE TABLE"), "{rendered}");
        assert!(!rendered.contains("ALTER TABLE"), "{rendered}");
    }

    /// A staging name that is already taken gains underscores until it is
    /// fresh.
    #[test]
    fn staging_names_avoid_existing_tables() {
        let source = Schema::parse("T(x: int)\nlegacy_T(y: int)").unwrap();
        let target = Schema::parse("T(x: int)").unwrap();
        let mut phi = ValueCorrespondence::new();
        phi.add(qa("T", "x"), qa("T", "x"));
        let plan = migration_plan(&source, &target, &phi);
        assert_eq!(plan.renames.len(), 1);
        assert_eq!(plan.renames[0].staged, "_legacy_T");
        assert!(plan.renames[0].drop_after);
        assert_eq!(plan.effective_name(&"T".into()), "_legacy_T");
    }

    /// Regression (review finding): a source table the migration never
    /// reads must not be dropped — its rows were copied nowhere, so the
    /// "executable as printed" script would destroy data.
    #[test]
    fn unread_source_tables_are_never_dropped() {
        // `Orphan` feeds nothing; `T` collides with the target but is also
        // unread (empty phi for it would be odd, so map A only).
        let source = Schema::parse("A(x: int)\nOrphan(secret: string)\nT(y: int)").unwrap();
        let target = Schema::parse("B(x: int)\nT(z: int)").unwrap();
        let mut phi = ValueCorrespondence::new();
        phi.add(qa("A", "x"), qa("B", "x"));

        let script = migration_script(&source, &target, &phi, &Ansi);
        // A moved rows -> dropped. Orphan and the staged legacy_T did not
        // -> kept, with notes.
        assert_eq!(script.cleanup, vec!["DROP TABLE A;".to_string()]);
        assert!(
            script
                .preamble
                .contains(&"ALTER TABLE T RENAME TO legacy_T;".to_string()),
            "{:#?}",
            script.preamble
        );
        assert!(
            script
                .notes
                .iter()
                .any(|n| n.contains("Orphan") && n.contains("NOT dropped")),
            "{:#?}",
            script.notes
        );
        assert!(
            script
                .notes
                .iter()
                .any(|n| n.contains("legacy_T") && n.contains("NOT dropped")),
            "{:#?}",
            script.notes
        );

        // The fully-empty correspondence moves nothing and drops nothing.
        let empty = migration_script(&source, &target, &ValueCorrespondence::new(), &Ansi);
        assert!(empty.is_empty());
        assert!(empty.cleanup.is_empty(), "{:#?}", empty.cleanup);
    }

    /// Postgres inserts into identity columns carry `OVERRIDING SYSTEM
    /// VALUE`, because the emitted DDL declares them `GENERATED ALWAYS`.
    #[test]
    fn postgres_identity_inserts_override_system_values() {
        let source = Schema::parse("U(uid: int, uname: string, grp: string)").unwrap();
        let mut target = Schema::parse(
            "Account(uid: int, grp_id: id, uname: string)\n\
             Grp(grp_id: id, gname: string)",
        )
        .unwrap();
        target
            .add_foreign_key(qa("Account", "grp_id"), qa("Grp", "grp_id"))
            .unwrap();
        let mut phi = ValueCorrespondence::new();
        phi.add(qa("U", "uid"), qa("Account", "uid"));
        phi.add(qa("U", "uname"), qa("Account", "uname"));
        phi.add(qa("U", "grp"), qa("Grp", "gname"));

        let script = migration_script(&source, &target, &phi, &Postgres);
        assert!(
            script
                .statements
                .iter()
                .all(|s| s.contains("OVERRIDING SYSTEM VALUE SELECT")),
            "{:#?}",
            script.statements
        );
        assert!(
            script
                .preamble
                .iter()
                .any(|s| s.contains("GENERATED ALWAYS AS IDENTITY")),
            "{:#?}",
            script.preamble
        );
    }
}
