//! A minimal JSON document builder and serializer.
//!
//! The workspace builds without network access, so instead of depending on
//! `serde_json` this module provides the small subset the `migrate` CLI and
//! the experiment harness need: building a tree of JSON values and rendering
//! it with correct string escaping, either compact or indented.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i128),
    /// A floating-point number. Non-finite values serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Creates an empty object.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Adds (or appends) a key to an object; panics on non-objects, which
    /// indicates a bug at the construction site.
    pub fn set(&mut self, key: impl Into<String>, value: Json) -> &mut Json {
        match self {
            Json::Object(entries) => entries.push((key.into(), value)),
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Builder-style [`Json::set`].
    pub fn with(mut self, key: impl Into<String>, value: Json) -> Json {
        self.set(key, value);
        self
    }

    /// Serializes the value compactly (no whitespace).
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes the value with two-space indentation and a trailing newline.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                write_sequence(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Json::Object(entries) => {
                write_sequence(out, indent, depth, '{', '}', entries.len(), |out, i| {
                    let (key, value) = &entries[i];
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                });
            }
        }
    }
}

fn write_sequence(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::str(s)
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Int(n as i128)
    }
}

impl From<u128> for Json {
    fn from(n: u128) -> Json {
        // Saturate rather than wrap: a saturated search-space count must not
        // come out negative in the serialized document.
        Json::Int(i128::try_from(n).unwrap_or(i128::MAX))
    }
}

impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::Float(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_object_rendering() {
        let doc = Json::object()
            .with("name", Json::str("a\"b"))
            .with("n", Json::Int(3))
            .with("ok", Json::Bool(true))
            .with("items", Json::Array(vec![Json::Null, Json::Float(1.5)]));
        assert_eq!(
            doc.to_compact_string(),
            r#"{"name":"a\"b","n":3,"ok":true,"items":[null,1.5]}"#
        );
    }

    #[test]
    fn pretty_rendering_indents() {
        let doc = Json::object().with("xs", Json::Array(vec![Json::Int(1)]));
        assert_eq!(doc.to_pretty_string(), "{\n  \"xs\": [\n    1\n  ]\n}\n");
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(
            Json::str("a\nb\u{1}").to_compact_string(),
            "\"a\\nb\\u0001\""
        );
    }

    #[test]
    fn empty_containers_stay_on_one_line() {
        assert_eq!(Json::Array(vec![]).to_pretty_string(), "[]\n");
        assert_eq!(Json::object().to_compact_string(), "{}");
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(Json::Float(f64::NAN).to_compact_string(), "null");
    }

    #[test]
    fn huge_u128_saturates_instead_of_wrapping_negative() {
        let rendered = Json::from(u128::MAX).to_compact_string();
        assert!(!rendered.starts_with('-'), "{rendered}");
        assert_eq!(rendered, i128::MAX.to_string());
    }
}
