//! A minimal JSON document builder, serializer and parser.
//!
//! The workspace builds without network access, so instead of depending on
//! `serde_json` this module provides the small subset the `migrate` CLI and
//! the experiment harness need: building a tree of JSON values, rendering
//! it with correct string escaping (compact or indented), and parsing
//! documents the workspace itself wrote (e.g. `BENCH_results.json` for the
//! deterministic-stats CI check).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i128),
    /// A floating-point number. Non-finite values serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Creates an empty object.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Adds (or appends) a key to an object; panics on non-objects, which
    /// indicates a bug at the construction site.
    pub fn set(&mut self, key: impl Into<String>, value: Json) -> &mut Json {
        match self {
            Json::Object(entries) => entries.push((key.into(), value)),
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Builder-style [`Json::set`].
    pub fn with(mut self, key: impl Into<String>, value: Json) -> Json {
        self.set(key, value);
        self
    }

    /// Looks up a key in an object; `None` on missing keys and non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(entries) => entries.iter().find_map(|(k, v)| (k == key).then_some(v)),
            _ => None,
        }
    }

    /// The elements of an array (`None` for non-arrays).
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload (`None` for non-strings).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload (`None` for non-integers; floats are not
    /// coerced).
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a float (integers are widened).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The boolean payload (`None` for non-booleans).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// Supports the full value grammar this module serializes: objects,
    /// arrays, strings with escapes (including `\uXXXX`), integers, floats,
    /// booleans and `null`. Trailing content after the top-level value is an
    /// error.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description with a byte offset on malformed
    /// input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(format!(
                "trailing content at byte {} after the top-level value",
                parser.pos
            ));
        }
        Ok(value)
    }

    /// Serializes the value compactly (no whitespace).
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes the value with two-space indentation and a trailing newline.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                write_sequence(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Json::Object(entries) => {
                write_sequence(out, indent, depth, '{', '}', entries.len(), |out, i| {
                    let (key, value) = &entries[i];
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                });
            }
        }
    }
}

/// A recursive-descent parser over the raw bytes of a JSON document.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", byte as char, self.pos))
        }
    }

    fn eat_literal(&mut self, literal: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!(
                "unexpected byte `{}` at offset {}",
                c as char, self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            entries.push((key, self.value()?));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(entries));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| {
                                    format!("truncated \\u escape at byte {}", self.pos)
                                })?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("invalid \\u escape at byte {}", self.pos))?;
                            // Surrogate pairs are not produced by the
                            // serializer; reject rather than mis-decode.
                            let c = char::from_u32(code).ok_or_else(|| {
                                format!("unsupported code point in \\u escape at byte {}", self.pos)
                            })?;
                            out.push(c);
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!("invalid escape {other:?} at byte {}", self.pos))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point (the input is a &str, so
                    // boundaries are always valid).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| "invalid UTF-8 inside string".to_string())?;
                    let c = text.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits and punctuation are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| format!("invalid number `{text}` at byte {start}"))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| format!("invalid number `{text}` at byte {start}"))
        }
    }
}

fn write_sequence(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::str(s)
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Int(n as i128)
    }
}

impl From<u128> for Json {
    fn from(n: u128) -> Json {
        // Saturate rather than wrap: a saturated search-space count must not
        // come out negative in the serialized document.
        Json::Int(i128::try_from(n).unwrap_or(i128::MAX))
    }
}

impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::Float(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_object_rendering() {
        let doc = Json::object()
            .with("name", Json::str("a\"b"))
            .with("n", Json::Int(3))
            .with("ok", Json::Bool(true))
            .with("items", Json::Array(vec![Json::Null, Json::Float(1.5)]));
        assert_eq!(
            doc.to_compact_string(),
            r#"{"name":"a\"b","n":3,"ok":true,"items":[null,1.5]}"#
        );
    }

    #[test]
    fn pretty_rendering_indents() {
        let doc = Json::object().with("xs", Json::Array(vec![Json::Int(1)]));
        assert_eq!(doc.to_pretty_string(), "{\n  \"xs\": [\n    1\n  ]\n}\n");
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(
            Json::str("a\nb\u{1}").to_compact_string(),
            "\"a\\nb\\u0001\""
        );
    }

    #[test]
    fn empty_containers_stay_on_one_line() {
        assert_eq!(Json::Array(vec![]).to_pretty_string(), "[]\n");
        assert_eq!(Json::object().to_compact_string(), "{}");
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(Json::Float(f64::NAN).to_compact_string(), "null");
    }

    #[test]
    fn parse_round_trips_what_the_serializer_writes() {
        let doc = Json::object()
            .with("name", Json::str("Oracle-2 \"quoted\"\n"))
            .with("succeeded", Json::Bool(true))
            .with("iterations", Json::Int(64))
            .with("time", Json::Float(194.5))
            .with("nested", Json::object().with("nullish", Json::Null))
            .with(
                "rows",
                Json::Array(vec![Json::Int(-3), Json::Bool(false), Json::str("x")]),
            );
        for rendered in [doc.to_pretty_string(), doc.to_compact_string()] {
            assert_eq!(Json::parse(&rendered).unwrap(), doc);
        }
    }

    #[test]
    fn parse_accessors_navigate_documents() {
        let doc = Json::parse(r#"{"a": [1, 2.5, "s"], "b": {"c": true}}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap()[0].as_i128(),
            Some(1)
        );
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(2.5)
        );
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap()[2].as_str(),
            Some("s")
        );
        assert_eq!(
            doc.get("b").unwrap().get("c").unwrap().as_bool(),
            Some(true)
        );
        assert!(doc.get("missing").is_none());
        assert!(doc.get("a").unwrap().get("not-an-object").is_none());
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "{} trailing",
            "[1] 2",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn parse_decodes_unicode_escapes() {
        assert_eq!(Json::parse("\"a\\u00e9b\"").unwrap(), Json::str("a\u{e9}b"));
    }

    #[test]
    fn huge_u128_saturates_instead_of_wrapping_negative() {
        let rendered = Json::from(u128::MAX).to_compact_string();
        assert!(!rendered.starts_with('-'), "{rendered}");
        assert_eq!(rendered, i128::MAX.to_string());
    }
}
