//! SQL DDL ingestion: parsing a practical subset of `CREATE TABLE` into a
//! [`dbir::Schema`].
//!
//! Supported per statement:
//!
//! * column definitions `name TYPE [(args)]` with the column constraints
//!   `PRIMARY KEY`, `NOT NULL`, `UNIQUE`, `AUTOINCREMENT` / `AUTO_INCREMENT`
//!   (which, like `GENERATED ... AS IDENTITY` and `SERIAL`, marks the column
//!   as a system-minted surrogate key), `DEFAULT <literal>` and
//!   `REFERENCES table (column)`;
//! * the table constraints `PRIMARY KEY (col)`, `UNIQUE (cols...)` and
//!   `FOREIGN KEY (col) REFERENCES table (column)`, optionally prefixed with
//!   `CONSTRAINT name`;
//! * `--` line comments, `/* ... */` block comments, quoted identifiers
//!   (`"t"`, `` `t` ``, `[t]`) and `IF NOT EXISTS`.
//!
//! Everything the synthesizer cannot represent (multi-column primary keys,
//! `CHECK` constraints, unknown types, ...) is rejected with a diagnostic
//! that carries the offending source span, rather than silently dropped.

use dbir::schema::{QualifiedAttr, Schema, TableDef};
use dbir::DataType;

use crate::token::{tokenize, Token, TokenKind};
pub use crate::token::{Span, SqlError};

/// Maps a SQL type name (case-insensitive, arguments already stripped) to a
/// [`DataType`].
pub fn data_type_for(type_name: &str) -> Option<DataType> {
    match type_name.to_ascii_uppercase().as_str() {
        "INT" | "INTEGER" | "BIGINT" | "SMALLINT" | "TINYINT" | "MEDIUMINT" | "NUMERIC"
        | "DECIMAL" => Some(DataType::Int),
        "VARCHAR" | "CHAR" | "CHARACTER" | "TEXT" | "CLOB" | "STRING" | "NVARCHAR" => {
            Some(DataType::String)
        }
        "BLOB" | "BINARY" | "VARBINARY" | "BYTEA" | "IMAGE" => Some(DataType::Binary),
        "BOOLEAN" | "BOOL" | "BIT" => Some(DataType::Bool),
        "UUID" | "SERIAL" | "BIGSERIAL" | "IDENTITY" => Some(DataType::Id),
        _ => None,
    }
}

struct Parser<'a> {
    source: &'a str,
    tokens: Vec<Token>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let token = self.tokens.get(self.pos).cloned();
        if token.is_some() {
            self.pos += 1;
        }
        token
    }

    fn eof_span(&self) -> Span {
        self.tokens
            .last()
            .map(|t| t.span)
            .unwrap_or(Span::point(1, 1))
    }

    fn error(&self, message: impl Into<String>, span: Span) -> SqlError {
        SqlError::new(message, span, self.source)
    }

    fn expect_kw(&mut self, kw: &str) -> Result<Token, SqlError> {
        match self.next() {
            Some(t) if t.is_kw(kw) => Ok(t),
            Some(t) => Err(self.error(format!("expected `{kw}`"), t.span)),
            None => Err(self.error(
                format!("expected `{kw}`, found end of input"),
                self.eof_span(),
            )),
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<Token, SqlError> {
        match self.next() {
            Some(t) if t.is_punct(c) => Ok(t),
            Some(t) => Err(self.error(format!("expected `{c}`"), t.span)),
            None => Err(self.error(
                format!("expected `{c}`, found end of input"),
                self.eof_span(),
            )),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<(String, Span), SqlError> {
        match self.next() {
            Some(t) => match t.ident() {
                Some(name) => Ok((name.to_string(), t.span)),
                None => Err(self.error(format!("expected {what}"), t.span)),
            },
            None => Err(self.error(
                format!("expected {what}, found end of input"),
                self.eof_span(),
            )),
        }
    }

    /// Parses `( ident )` and returns the identifier.
    fn parenthesized_ident(&mut self, what: &str) -> Result<(String, Span), SqlError> {
        self.expect_punct('(')?;
        let result = self.expect_ident(what)?;
        if self.peek().is_some_and(|t| t.is_punct(',')) {
            let span = self.peek().expect("peeked").span;
            return Err(self.error(format!("multi-column {what} lists are not supported"), span));
        }
        self.expect_punct(')')?;
        Ok(result)
    }

    /// Skips a literal (number, string, keyword like NULL/TRUE, or signed
    /// number) after `DEFAULT`.
    fn skip_literal(&mut self) -> Result<(), SqlError> {
        match self.next() {
            Some(t) if t.is_punct('-') => {
                // A negative numeric default.
                match self.next() {
                    Some(t) if matches!(t.kind, TokenKind::Number(_)) => Ok(()),
                    Some(t) => Err(self.error("expected number after `-`", t.span)),
                    None => Err(self.error("expected number after `-`", self.eof_span())),
                }
            }
            Some(t) if t.is_punct('(') => {
                // A parenthesized default expression: skip to the matching `)`.
                let mut depth = 1;
                while depth > 0 {
                    match self.next() {
                        Some(t) if t.is_punct('(') => depth += 1,
                        Some(t) if t.is_punct(')') => depth -= 1,
                        Some(_) => {}
                        None => {
                            return Err(
                                self.error("unterminated default expression", self.eof_span())
                            )
                        }
                    }
                }
                Ok(())
            }
            Some(t) => match t.kind {
                TokenKind::Number(_) | TokenKind::StringLit(_) | TokenKind::Ident { .. } => Ok(()),
                _ => Err(self.error("expected literal after `DEFAULT`", t.span)),
            },
            None => Err(self.error("expected literal after `DEFAULT`", self.eof_span())),
        }
    }
}

#[derive(Debug)]
struct PendingForeignKey {
    from_table: String,
    from_column: String,
    to_table: String,
    to_column: String,
    span: Span,
}

/// Parses a DDL script (a sequence of `CREATE TABLE` statements) into a
/// [`Schema`].
///
/// # Errors
///
/// Returns a [`SqlError`] carrying the source span of the first offending
/// construct.
pub fn parse_ddl(source: &str) -> Result<Schema, SqlError> {
    let tokens = tokenize(source)?;
    let mut parser = Parser {
        source,
        tokens,
        pos: 0,
    };
    let mut schema = Schema::new();
    let mut foreign_keys: Vec<PendingForeignKey> = Vec::new();

    while parser.peek().is_some() {
        // Allow stray semicolons between statements.
        if parser.peek().is_some_and(|t| t.is_punct(';')) {
            parser.next();
            continue;
        }
        parser.expect_kw("CREATE")?;
        parser.expect_kw("TABLE")?;
        // Optional IF NOT EXISTS.
        if parser.peek().is_some_and(|t| t.is_kw("IF")) {
            parser.next();
            parser.expect_kw("NOT")?;
            parser.expect_kw("EXISTS")?;
        }
        let (table_name, table_span) = parser.expect_ident("table name")?;
        parser.expect_punct('(')?;

        let mut table = TableDef::new(table_name.clone(), Vec::<(String, DataType)>::new());
        let mut primary_key: Option<(String, Span)> = None;

        loop {
            let Some(first) = parser.peek().cloned() else {
                return Err(parser.error("unterminated table body", parser.eof_span()));
            };
            if first.is_punct(')') {
                parser.next();
                break;
            }
            if first.is_kw("PRIMARY") {
                parser.next();
                parser.expect_kw("KEY")?;
                let (column, span) = parser.parenthesized_ident("primary key column")?;
                if let Some((_, previous)) = &primary_key {
                    let _ = previous;
                    return Err(parser.error(
                        format!("table `{table_name}` declares more than one primary key"),
                        span,
                    ));
                }
                primary_key = Some((column, span));
            } else if first.is_kw("FOREIGN") {
                parser.next();
                parser.expect_kw("KEY")?;
                let (from_column, span) = parser.parenthesized_ident("foreign key column")?;
                parser.expect_kw("REFERENCES")?;
                let (to_table, _) = parser.expect_ident("referenced table")?;
                let (to_column, _) = parser.parenthesized_ident("referenced column")?;
                foreign_keys.push(PendingForeignKey {
                    from_table: table_name.clone(),
                    from_column,
                    to_table,
                    to_column,
                    span,
                });
            } else if first.is_kw("UNIQUE") {
                parser.next();
                // A UNIQUE table constraint carries no information the
                // synthesizer uses; accept and discard the column list.
                parser.expect_punct('(')?;
                loop {
                    parser.expect_ident("column name")?;
                    match parser.next() {
                        Some(t) if t.is_punct(',') => continue,
                        Some(t) if t.is_punct(')') => break,
                        Some(t) => return Err(parser.error("expected `,` or `)`", t.span)),
                        None => {
                            return Err(
                                parser.error("unterminated UNIQUE constraint", parser.eof_span())
                            )
                        }
                    }
                }
            } else if first.is_kw("CONSTRAINT") {
                parser.next();
                parser.expect_ident("constraint name")?;
                continue; // The named constraint body follows.
            } else if first.is_kw("CHECK") {
                return Err(parser.error("CHECK constraints are not supported", first.span));
            } else {
                // A column definition.
                let (column_name, column_span) = parser.expect_ident("column name")?;
                let (type_name, type_span) = parser.expect_ident("column type")?;
                // Optional type arguments: VARCHAR(255), DECIMAL(10, 2), ...
                if parser.peek().is_some_and(|t| t.is_punct('(')) {
                    parser.next();
                    let mut depth = 1;
                    while depth > 0 {
                        match parser.next() {
                            Some(t) if t.is_punct('(') => depth += 1,
                            Some(t) if t.is_punct(')') => depth -= 1,
                            Some(_) => {}
                            None => {
                                return Err(
                                    parser.error("unterminated type arguments", parser.eof_span())
                                )
                            }
                        }
                    }
                }
                let Some(mut ty) = data_type_for(&type_name) else {
                    return Err(parser.error(
                        format!(
                            "unsupported column type `{type_name}` (supported: INTEGER, \
                             VARCHAR/TEXT, BLOB, BOOLEAN, UUID/SERIAL and their aliases)"
                        ),
                        type_span,
                    ));
                };
                if table.column_index(&column_name.as_str().into()).is_some() {
                    return Err(parser.error(
                        format!("duplicate column `{column_name}` in table `{table_name}`"),
                        column_span,
                    ));
                }
                // Column constraints.
                loop {
                    let Some(t) = parser.peek().cloned() else {
                        return Err(parser.error("unterminated table body", parser.eof_span()));
                    };
                    if t.is_punct(',') || t.is_punct(')') {
                        break;
                    }
                    if t.is_kw("PRIMARY") {
                        parser.next();
                        parser.expect_kw("KEY")?;
                        if let Some((_, _)) = &primary_key {
                            return Err(parser.error(
                                format!("table `{table_name}` declares more than one primary key"),
                                t.span,
                            ));
                        }
                        primary_key = Some((column_name.clone(), t.span));
                    } else if t.is_kw("NOT") {
                        parser.next();
                        parser.expect_kw("NULL")?;
                    } else if t.is_kw("NULL") || t.is_kw("UNIQUE") {
                        parser.next();
                    } else if t.is_auto_increment_kw() {
                        // A system-minted surrogate key, i.e. `Id` (see
                        // `Token::is_auto_increment_kw`) — the MySQL
                        // analogue of `GENERATED ... AS IDENTITY` below.
                        // This also makes the MySQL dialect's
                        // `BIGINT AUTO_INCREMENT` rendering round-trip.
                        parser.next();
                        ty = DataType::Id;
                    } else if t.is_kw("DEFAULT") {
                        parser.next();
                        parser.skip_literal()?;
                    } else if t.is_kw("GENERATED") {
                        // Postgres identity columns: `GENERATED {ALWAYS | BY
                        // DEFAULT} AS IDENTITY [( options )]`. The column is
                        // a system-generated surrogate key, i.e. `Id`.
                        parser.next();
                        if parser.peek().is_some_and(|t| t.is_kw("ALWAYS")) {
                            parser.next();
                        } else if parser.peek().is_some_and(|t| t.is_kw("BY")) {
                            parser.next();
                            parser.expect_kw("DEFAULT")?;
                        } else {
                            return Err(parser.error(
                                "expected `ALWAYS` or `BY DEFAULT` after `GENERATED`",
                                t.span,
                            ));
                        }
                        parser.expect_kw("AS")?;
                        parser.expect_kw("IDENTITY")?;
                        if parser.peek().is_some_and(|t| t.is_punct('(')) {
                            parser.next();
                            let mut depth = 1;
                            while depth > 0 {
                                match parser.next() {
                                    Some(t) if t.is_punct('(') => depth += 1,
                                    Some(t) if t.is_punct(')') => depth -= 1,
                                    Some(_) => {}
                                    None => {
                                        return Err(parser.error(
                                            "unterminated identity options",
                                            parser.eof_span(),
                                        ))
                                    }
                                }
                            }
                        }
                        ty = DataType::Id;
                    } else if t.is_kw("REFERENCES") {
                        parser.next();
                        let (to_table, _) = parser.expect_ident("referenced table")?;
                        let (to_column, _) = parser.parenthesized_ident("referenced column")?;
                        foreign_keys.push(PendingForeignKey {
                            from_table: table_name.clone(),
                            from_column: column_name.clone(),
                            to_table,
                            to_column,
                            span: t.span,
                        });
                    } else {
                        return Err(parser.error(
                            format!(
                                "unsupported column constraint starting at `{}`",
                                t.ident().unwrap_or("?")
                            ),
                            t.span,
                        ));
                    }
                }
                table.columns.push(dbir::schema::ColumnDef {
                    name: column_name.into(),
                    ty,
                });
            }
            // Between items: `,` continues, `)` ends.
            match parser.peek() {
                Some(t) if t.is_punct(',') => {
                    parser.next();
                }
                Some(t) if t.is_punct(')') => {}
                Some(t) => {
                    let span = t.span;
                    return Err(parser.error("expected `,` or `)`", span));
                }
                None => return Err(parser.error("unterminated table body", parser.eof_span())),
            }
        }

        // Optional statement tail (`;`); anything else is an error.
        match parser.peek() {
            Some(t) if t.is_punct(';') => {
                parser.next();
            }
            Some(t) if t.is_kw("CREATE") => {}
            Some(t) => {
                let span = t.span;
                return Err(parser.error("expected `;` or next `CREATE TABLE`", span));
            }
            None => {}
        }

        if let Some((key, span)) = primary_key {
            if table.column_index(&key.as_str().into()).is_none() {
                return Err(parser.error(
                    format!("primary key `{key}` is not a column of `{table_name}`"),
                    span,
                ));
            }
            table.primary_key = Some(key.into());
        }
        if table.columns.is_empty() {
            return Err(parser.error(
                format!("table `{table_name}` declares no columns"),
                table_span,
            ));
        }
        schema
            .add_table(table)
            .map_err(|e| parser.error(e.to_string(), table_span))?;
    }

    for fk in foreign_keys {
        schema
            .add_foreign_key(
                QualifiedAttr::new(fk.from_table.as_str(), fk.from_column.as_str()),
                QualifiedAttr::new(fk.to_table.as_str(), fk.to_column.as_str()),
            )
            .map_err(|e| SqlError::new(e.to_string(), fk.span, source))?;
    }
    Ok(schema)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_motivating_target_schema() {
        let schema = parse_ddl(
            r#"
            -- the refactored course-management schema
            CREATE TABLE Class (
                ClassId INTEGER PRIMARY KEY,
                InstId INTEGER,
                TaId INTEGER
            );
            CREATE TABLE Instructor (
                InstId INTEGER,
                IName VARCHAR(255) NOT NULL,
                PicId UUID REFERENCES Picture(PicId)
            );
            CREATE TABLE Picture (PicId UUID, Pic BLOB);
            "#,
        )
        .unwrap();
        assert_eq!(schema.table_count(), 3);
        assert_eq!(
            schema.attr_type(&QualifiedAttr::new("Picture", "Pic")),
            Some(DataType::Binary)
        );
        assert_eq!(
            schema.attr_type(&QualifiedAttr::new("Instructor", "PicId")),
            Some(DataType::Id)
        );
        assert_eq!(schema.foreign_keys().len(), 1);
        let class = schema.table(&"Class".into()).unwrap();
        assert_eq!(class.primary_key, Some("ClassId".into()));
    }

    #[test]
    fn accepts_table_level_constraints_and_quoting() {
        let schema = parse_ddl(
            r#"
            CREATE TABLE IF NOT EXISTS "Order" (
                id SERIAL,
                `label` TEXT DEFAULT 'none',
                [user_id] INT DEFAULT -1,
                PRIMARY KEY (id),
                CONSTRAINT fk_user FOREIGN KEY (user_id) REFERENCES Users (uid),
                UNIQUE (label, user_id)
            );
            CREATE TABLE Users (uid INT, active BOOLEAN DEFAULT TRUE)
            "#,
        )
        .unwrap();
        assert_eq!(schema.table_count(), 2);
        let order = schema.table(&"Order".into()).unwrap();
        assert_eq!(order.primary_key, Some("id".into()));
        assert_eq!(schema.foreign_keys().len(), 1);
        assert_eq!(
            schema.attr_type(&QualifiedAttr::new("Users", "active")),
            Some(DataType::Bool)
        );
    }

    #[test]
    fn quoted_reserved_names_parse_as_identifiers() {
        let schema =
            parse_ddl(r#"CREATE TABLE T ("unique" INT, "primary" TEXT, PRIMARY KEY ("unique"));"#)
                .unwrap();
        let t = schema.table(&"T".into()).unwrap();
        assert_eq!(t.columns.len(), 2);
        assert_eq!(t.primary_key, Some("unique".into()));
        assert_eq!(
            schema.attr_type(&QualifiedAttr::new("T", "primary")),
            Some(DataType::String)
        );
    }

    #[test]
    fn unknown_type_reports_its_span() {
        let err = parse_ddl("CREATE TABLE T (\n  a GEOGRAPHY\n);").unwrap_err();
        assert!(err.message.contains("GEOGRAPHY"), "{}", err.message);
        assert_eq!(err.span.line, 2);
        assert_eq!(err.span.column, 5);
        assert_eq!(err.source_line, "  a GEOGRAPHY");
        let rendered = err.to_string();
        assert!(rendered.contains("--> 2:5"), "{rendered}");
        assert!(rendered.contains("^^^^^^^^^"), "{rendered}");
    }

    #[test]
    fn multi_column_primary_key_is_rejected_with_span() {
        let err = parse_ddl("CREATE TABLE T (a INT, b INT, PRIMARY KEY (a, b));").unwrap_err();
        assert!(err.message.contains("multi-column"), "{}", err.message);
        assert_eq!(err.span.line, 1);
    }

    #[test]
    fn duplicate_primary_key_is_rejected() {
        let err =
            parse_ddl("CREATE TABLE T (a INT PRIMARY KEY, b INT, PRIMARY KEY (b));").unwrap_err();
        assert!(err.message.contains("more than one primary key"));
    }

    #[test]
    fn unknown_fk_endpoint_is_rejected_with_span() {
        let err = parse_ddl("CREATE TABLE A (x INT REFERENCES B(nope));\nCREATE TABLE B (y INT);")
            .unwrap_err();
        assert!(err.message.contains("B.nope"), "{}", err.message);
        assert_eq!(err.span.line, 1);
    }

    #[test]
    fn forward_references_are_allowed() {
        let schema =
            parse_ddl("CREATE TABLE A (x INT REFERENCES B(y));\nCREATE TABLE B (y INT);").unwrap();
        assert!(schema.joinable(&"A".into(), &"B".into()));
    }

    #[test]
    fn block_comments_and_case_insensitivity() {
        let schema =
            parse_ddl("create /* inline */ table t (a integer not null, b text unique);").unwrap();
        assert_eq!(schema.attr_count(), 2);
    }

    #[test]
    fn check_constraints_are_rejected() {
        let err = parse_ddl("CREATE TABLE T (a INT, CHECK (a > 0));").unwrap_err();
        assert!(err.message.contains("CHECK"));
    }

    #[test]
    fn garbage_after_statement_is_rejected() {
        let err = parse_ddl("CREATE TABLE T (a INT) WITHOUT ROWID;").unwrap_err();
        assert!(err.message.contains("expected `;`"));
    }
}
