//! SQL emission: rendering [`dbir`] schemas and programs as executable SQL.
//!
//! Query functions become parameterized `SELECT` statements; update functions
//! become sequences of `INSERT` / `DELETE` / `UPDATE` statements. An `UPDATE`
//! over a join chain of several tables is lowered to a single-table `UPDATE`
//! with a correlated `EXISTS` subquery over the remaining chain tables. A
//! `DELETE` spanning several tables first snapshots the matching key tuples
//! into one temporary table while the join is still intact, then deletes
//! each table against the snapshot — sequential correlated deletes would be
//! wrong, because the first `DELETE` empties a table the later subqueries
//! still need to read. The paper's
//! insert-over-join shorthand becomes one `INSERT` per table with shared
//! fresh-identifier parameters.
//!
//! Rendering is parameterized by a [`Dialect`]: [`Ansi`] uses named `:param`
//! placeholders and `VARCHAR`; [`Sqlite`] uses numbered `?N` placeholders and
//! `TEXT`; [`Postgres`] uses `$N` placeholders and identity surrogate keys;
//! [`MySql`] uses bare `?` placeholders, backtick quoting and
//! `AUTO_INCREMENT` surrogate keys.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use dbir::ast::{Function, FunctionBody, JoinChain, Operand, Pred, Query, Update};
use dbir::schema::QualifiedAttr;
use dbir::{DataType, Program, Schema, TableName, Value};

/// A SQL dialect: placeholder style, identifier quoting and type names.
pub trait Dialect {
    /// Dialect name as used on the CLI (`ansi`, `sqlite`).
    fn name(&self) -> &'static str;

    /// Renders the placeholder for a function parameter.
    ///
    /// `index` is the 1-based position of the parameter in the function
    /// signature.
    fn placeholder(&self, param: &str, index: usize) -> String;

    /// The DDL type name for a [`DataType`].
    ///
    /// The name together with [`Dialect::ddl_column_suffix`] must parse back
    /// to the same `DataType` via [`crate::ddl::parse_ddl`], so emitted DDL
    /// round-trips (the suffix matters for dialects like [`Postgres`] whose
    /// identity columns are an integer type plus a constraint).
    fn type_name(&self, ty: DataType) -> &'static str;

    /// Renders a boolean literal.
    fn bool_literal(&self, value: bool) -> &'static str {
        if value {
            "TRUE"
        } else {
            "FALSE"
        }
    }

    /// Extra column-constraint text emitted after the type name in DDL
    /// (e.g. Postgres identity columns). Whatever is returned must re-parse
    /// via [`crate::ddl::parse_ddl`] to the same column the DDL was emitted
    /// from, so emitted DDL round-trips.
    fn ddl_column_suffix(&self, _ty: DataType) -> &'static str {
        ""
    }

    /// Clause inserted between the column list and `SELECT`/`VALUES` of an
    /// `INSERT` that writes explicit values into system-generated identity
    /// columns (Postgres `OVERRIDING SYSTEM VALUE`; empty elsewhere).
    fn insert_overriding_clause(&self) -> &'static str {
        ""
    }

    /// Quotes an identifier if it needs quoting.
    fn ident(&self, name: &str) -> String {
        let plain = !name.is_empty()
            && name
                .chars()
                .enumerate()
                .all(|(i, c)| c == '_' || c.is_ascii_alphabetic() || (i > 0 && c.is_ascii_digit()));
        if plain && !is_reserved(name) {
            name.to_string()
        } else {
            format!("\"{}\"", name.replace('"', "\"\""))
        }
    }
}

fn is_reserved(name: &str) -> bool {
    const RESERVED: &[&str] = &[
        "ALL",
        "AND",
        "AS",
        "BY",
        "CASE",
        "CHECK",
        "CONSTRAINT",
        "CREATE",
        "DEFAULT",
        "DELETE",
        "DISTINCT",
        "DROP",
        "ELSE",
        "EXISTS",
        "FOREIGN",
        "FROM",
        "GROUP",
        "IN",
        "INDEX",
        "INSERT",
        "INTO",
        "JOIN",
        "KEY",
        "LIMIT",
        "NOT",
        "NULL",
        "ON",
        "OR",
        "ORDER",
        "PRIMARY",
        "REFERENCES",
        "SELECT",
        "SET",
        "TABLE",
        "THEN",
        "TO",
        "UNION",
        "UNIQUE",
        "UPDATE",
        "USER",
        "VALUES",
        "WHEN",
        "WHERE",
    ];
    RESERVED.iter().any(|r| name.eq_ignore_ascii_case(r))
}

/// Generic ANSI SQL: named `:param` placeholders, `VARCHAR(255)` strings.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ansi;

impl Dialect for Ansi {
    fn name(&self) -> &'static str {
        "ansi"
    }

    fn placeholder(&self, param: &str, _index: usize) -> String {
        format!(":{param}")
    }

    fn type_name(&self, ty: DataType) -> &'static str {
        match ty {
            DataType::Int => "INTEGER",
            DataType::String => "VARCHAR(255)",
            DataType::Binary => "BLOB",
            DataType::Bool => "BOOLEAN",
            DataType::Id => "UUID",
        }
    }
}

/// SQLite: numbered `?N` placeholders, `TEXT` strings, `1`/`0` booleans.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sqlite;

impl Dialect for Sqlite {
    fn name(&self) -> &'static str {
        "sqlite"
    }

    fn placeholder(&self, _param: &str, index: usize) -> String {
        format!("?{index}")
    }

    fn type_name(&self, ty: DataType) -> &'static str {
        match ty {
            DataType::Int => "INTEGER",
            DataType::String => "TEXT",
            DataType::Binary => "BLOB",
            DataType::Bool => "BOOLEAN",
            DataType::Id => "UUID",
        }
    }

    fn bool_literal(&self, value: bool) -> &'static str {
        if value {
            "1"
        } else {
            "0"
        }
    }
}

/// PostgreSQL: numbered `$N` placeholders, `TEXT` strings, `BYTEA` blobs,
/// identity columns for surrogate keys.
///
/// Two deliberate differences from [`Ansi`]:
///
/// * unquoted identifiers fold to lowercase in Postgres, so any identifier
///   containing an uppercase character is quoted to round-trip;
/// * [`DataType::Id`] columns are emitted as
///   `BIGINT GENERATED ALWAYS AS IDENTITY` — the migration scripts fill them
///   with integer skolem expressions, so the type must be integral, and
///   explicit inserts carry `OVERRIDING SYSTEM VALUE`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Postgres;

impl Dialect for Postgres {
    fn name(&self) -> &'static str {
        "postgres"
    }

    fn placeholder(&self, _param: &str, index: usize) -> String {
        format!("${index}")
    }

    fn type_name(&self, ty: DataType) -> &'static str {
        match ty {
            DataType::Int => "BIGINT",
            DataType::String => "TEXT",
            DataType::Binary => "BYTEA",
            DataType::Bool => "BOOLEAN",
            DataType::Id => "BIGINT",
        }
    }

    fn ddl_column_suffix(&self, ty: DataType) -> &'static str {
        match ty {
            DataType::Id => " GENERATED ALWAYS AS IDENTITY",
            _ => "",
        }
    }

    fn insert_overriding_clause(&self) -> &'static str {
        "OVERRIDING SYSTEM VALUE "
    }

    fn ident(&self, name: &str) -> String {
        let plain = !name.is_empty()
            && name
                .chars()
                .enumerate()
                .all(|(i, c)| c == '_' || c.is_ascii_lowercase() || (i > 0 && c.is_ascii_digit()));
        if plain && !is_reserved(name) {
            name.to_string()
        } else {
            format!("\"{}\"", name.replace('"', "\"\""))
        }
    }
}

/// MySQL / MariaDB: bare `?` placeholders, backtick identifier quoting,
/// `AUTO_INCREMENT` surrogate keys.
///
/// Differences from [`Ansi`]:
///
/// * placeholders are positional bare `?` (the MySQL client protocol has no
///   numbered or named placeholders), so the parameter *order* of the
///   emitted statement is the binding order;
/// * identifiers that need quoting are quoted with backticks (MySQL treats
///   `"` as a string quote unless `ANSI_QUOTES` is enabled);
/// * [`DataType::Id`] columns are emitted as `BIGINT AUTO_INCREMENT` — the
///   migration scripts fill them with integer skolem expressions, and the
///   DDL parser maps `AUTO_INCREMENT` back to `Id`, so emitted DDL
///   round-trips.
#[derive(Debug, Clone, Copy, Default)]
pub struct MySql;

impl Dialect for MySql {
    fn name(&self) -> &'static str {
        "mysql"
    }

    fn placeholder(&self, _param: &str, _index: usize) -> String {
        "?".to_string()
    }

    fn type_name(&self, ty: DataType) -> &'static str {
        match ty {
            DataType::Int => "BIGINT",
            DataType::String => "VARCHAR(255)",
            DataType::Binary => "BLOB",
            DataType::Bool => "BOOLEAN",
            DataType::Id => "BIGINT",
        }
    }

    fn ddl_column_suffix(&self, ty: DataType) -> &'static str {
        match ty {
            DataType::Id => " AUTO_INCREMENT",
            _ => "",
        }
    }

    fn ident(&self, name: &str) -> String {
        let plain = !name.is_empty()
            && name
                .chars()
                .enumerate()
                .all(|(i, c)| c == '_' || c.is_ascii_alphabetic() || (i > 0 && c.is_ascii_digit()));
        if plain && !is_reserved(name) {
            name.to_string()
        } else {
            format!("`{}`", name.replace('`', "``"))
        }
    }
}

/// Returns the dialect registered under `name`, if any.
pub fn dialect_by_name(name: &str) -> Option<Box<dyn Dialect>> {
    match name.to_ascii_lowercase().as_str() {
        "ansi" | "generic" => Some(Box::new(Ansi)),
        "sqlite" | "sqlite3" => Some(Box::new(Sqlite)),
        "postgres" | "postgresql" | "pg" => Some(Box::new(Postgres)),
        "mysql" | "mariadb" => Some(Box::new(MySql)),
        _ => None,
    }
}

/// One function rendered to SQL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlFunction {
    /// Function name.
    pub name: String,
    /// `true` for query functions.
    pub is_query: bool,
    /// `(name, type)` of each parameter, in placeholder order.
    pub params: Vec<(String, DataType)>,
    /// Names of fresh-identifier parameters the caller must generate (one
    /// per join link of an insert-over-join statement).
    pub fresh_ids: Vec<String>,
    /// The SQL statements, without trailing newlines.
    pub statements: Vec<String>,
}

struct Emitter<'a> {
    dialect: &'a dyn Dialect,
    /// Parameter name → 1-based placeholder index.
    param_index: BTreeMap<String, usize>,
}

impl Emitter<'_> {
    fn attr(&self, attr: &QualifiedAttr) -> String {
        format!(
            "{}.{}",
            self.dialect.ident(attr.table.as_str()),
            self.dialect.ident(attr.attr.as_str())
        )
    }

    fn operand(&self, operand: &Operand) -> String {
        match operand {
            Operand::Param(name) => {
                let index = self.param_index.get(name).copied().unwrap_or_else(|| {
                    panic!("parameter `{name}` is not declared by the function signature")
                });
                self.dialect.placeholder(name, index)
            }
            Operand::Value(value) => self.literal(value),
        }
    }

    fn literal(&self, value: &Value) -> String {
        value_literal(value, self.dialect)
    }

    fn join_chain(&self, join: &JoinChain) -> String {
        match join {
            JoinChain::Table(t) => self.dialect.ident(t.as_str()),
            JoinChain::Join {
                left,
                right,
                left_attr,
                right_attr,
            } => {
                let left_sql = self.join_chain(left);
                let right_sql = match right.as_ref() {
                    JoinChain::Table(_) => self.join_chain(right),
                    nested => format!("({})", self.join_chain(nested)),
                };
                format!(
                    "{left_sql} JOIN {right_sql} ON {} = {}",
                    self.attr(left_attr),
                    self.attr(right_attr)
                )
            }
        }
    }

    fn pred(&self, pred: &Pred) -> String {
        match pred {
            Pred::True => "TRUE".to_string(),
            Pred::False => "FALSE".to_string(),
            Pred::CmpAttr { lhs, op, rhs } => {
                format!("{} {} {}", self.attr(lhs), sql_op(*op), self.attr(rhs))
            }
            Pred::CmpValue { lhs, op, rhs } => {
                format!("{} {} {}", self.attr(lhs), sql_op(*op), self.operand(rhs))
            }
            Pred::In { attr, query } => {
                format!("{} IN ({})", self.attr(attr), self.query(query))
            }
            Pred::And(a, b) => format!("({} AND {})", self.pred(a), self.pred(b)),
            Pred::Or(a, b) => format!("({} OR {})", self.pred(a), self.pred(b)),
            Pred::Not(p) => format!("NOT ({})", self.pred(p)),
        }
    }

    fn query(&self, query: &Query) -> String {
        let (attrs, pred, join) = decompose(query);
        let mut out = String::from("SELECT ");
        match attrs {
            Some(attrs) => {
                for (i, attr) in attrs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&self.attr(attr));
                }
            }
            None => out.push('*'),
        }
        let _ = write!(out, " FROM {}", self.join_chain(join));
        if let Some(pred) = pred {
            if pred != &Pred::True {
                let _ = write!(out, " WHERE {}", self.pred(pred));
            }
        }
        out
    }

    /// Renders the `WHERE` clause shared by the lowered single-table delete
    /// and update: a correlated `EXISTS` over the remaining tables of the
    /// join chain (which the statement itself leaves intact).
    fn correlated_exists(&self, target: &TableName, join: &JoinChain, pred: &Pred) -> String {
        let mut others: Vec<TableName> = Vec::new();
        let mut seen_target = false;
        for table in join.tables() {
            if &table == target && !seen_target {
                // The first occurrence is the correlated outer table.
                seen_target = true;
            } else if !others.contains(&table) {
                others.push(table);
            }
        }
        let mut conditions: Vec<String> = join
            .join_condition_attrs()
            .chunks(2)
            .map(|pair| format!("{} = {}", self.attr(&pair[0]), self.attr(&pair[1])))
            .collect();
        if pred != &Pred::True {
            conditions.push(self.pred(pred));
        }
        if others.is_empty() {
            return if conditions.is_empty() {
                String::new()
            } else {
                format!(" WHERE {}", conditions.join(" AND "))
            };
        }
        let from: Vec<String> = others
            .iter()
            .map(|t| self.dialect.ident(t.as_str()))
            .collect();
        let where_clause = if conditions.is_empty() {
            String::new()
        } else {
            format!(" WHERE {}", conditions.join(" AND "))
        };
        format!(
            " WHERE EXISTS (SELECT 1 FROM {}{})",
            from.join(", "),
            where_clause
        )
    }

    /// Lowers a `DELETE` that removes rows from several tables of one join
    /// chain. The tables reference each other through the join, so no
    /// sequential order of correlated deletes is sound; instead, snapshot
    /// the matching tuples of every referenced attribute into one temporary
    /// table with a single join scan, then delete each table against the
    /// snapshot only. Deleting every row that agrees with a snapshot tuple
    /// on its table's referenced attributes is exact, because rows
    /// indistinguishable on those attributes are indistinguishable to the
    /// join conditions and the predicate.
    fn multi_table_delete(
        &self,
        tables: &[TableName],
        join: &JoinChain,
        pred: &Pred,
        snapshot_count: &mut usize,
    ) -> Vec<String> {
        let mut referenced = join.join_condition_attrs();
        referenced.extend(pred.attrs());
        let per_table: Vec<(&TableName, Vec<&QualifiedAttr>)> = tables
            .iter()
            .map(|table| {
                let mut attrs: Vec<&QualifiedAttr> = Vec::new();
                for attr in &referenced {
                    if &attr.table == table && !attrs.contains(&attr) {
                        attrs.push(attr);
                    }
                }
                (table, attrs)
            })
            .collect();
        let columns: Vec<&QualifiedAttr> = per_table
            .iter()
            .flat_map(|(_, attrs)| attrs.iter().copied())
            .collect();
        // Snapshot column aliases: `Table_attr` unless that collides (e.g.
        // table `A_B` attr `c` vs table `A` attr `B_c`), then positional.
        let mut aliases: Vec<String> = columns
            .iter()
            .map(|a| format!("{}_{}", a.table.as_str(), a.attr.as_str()))
            .collect();
        if aliases
            .iter()
            .collect::<std::collections::BTreeSet<_>>()
            .len()
            < aliases.len()
        {
            aliases = (0..columns.len()).map(|i| format!("c{i}")).collect();
        }

        let delete_index = *snapshot_count;
        *snapshot_count += 1;
        let snapshot = self.dialect.ident(&format!("tmp_delete_{delete_index}"));
        let mut statements = Vec::new();
        if !columns.is_empty() {
            let where_clause = if pred == &Pred::True {
                String::new()
            } else {
                format!(" WHERE {}", self.pred(pred))
            };
            let select_list: Vec<String> = columns
                .iter()
                .zip(&aliases)
                .map(|(a, alias)| format!("{} AS {}", self.attr(a), self.dialect.ident(alias)))
                .collect();
            statements.push(format!(
                "CREATE TEMPORARY TABLE {snapshot} AS SELECT DISTINCT {} FROM {}{where_clause};",
                select_list.join(", "),
                self.join_chain(join),
            ));
        }
        // A table the join conditions and predicate never consult
        // participates whenever the join result is non-empty at all; its
        // correlated delete reads the other tables live, so it must run
        // before the snapshot-based deletes empty them.
        for (table, attrs) in &per_table {
            if attrs.is_empty() {
                statements.push(format!(
                    "DELETE FROM {}{};",
                    self.dialect.ident(table.as_str()),
                    self.correlated_exists(table, join, pred)
                ));
            }
        }
        let mut offset = 0;
        for (table, attrs) in &per_table {
            let table_aliases = &aliases[offset..offset + attrs.len()];
            offset += attrs.len();
            if attrs.is_empty() {
                continue;
            }
            let conditions: Vec<String> = attrs
                .iter()
                .zip(table_aliases)
                .map(|(a, alias)| {
                    format!(
                        "{snapshot}.{} = {}",
                        self.dialect.ident(alias),
                        self.attr(a)
                    )
                })
                .collect();
            statements.push(format!(
                "DELETE FROM {} WHERE EXISTS (SELECT 1 FROM {snapshot} WHERE {});",
                self.dialect.ident(table.as_str()),
                conditions.join(" AND ")
            ));
        }
        if !columns.is_empty() {
            statements.push(format!("DROP TABLE {snapshot};"));
        }
        statements
    }

    fn update(&self, update: &Update, fresh_ids: &mut Vec<String>) -> Vec<String> {
        let mut statements = Vec::new();
        let mut snapshot_count = 0usize;
        for stmt in update.statements() {
            match stmt {
                Update::Insert { join, values } => {
                    // Fresh identifiers link the tables of an
                    // insert-over-join: one shared parameter per join
                    // condition (paper §3.1).
                    let mut link_values: BTreeMap<QualifiedAttr, String> = BTreeMap::new();
                    if let JoinChain::Join { .. } = join {
                        for pair in join.join_condition_attrs().chunks(2) {
                            let name = format!("fresh_id_{}", fresh_ids.len());
                            fresh_ids.push(name.clone());
                            let placeholder = self
                                .dialect
                                .placeholder(&name, self.param_index.len() + fresh_ids.len());
                            link_values.insert(pair[0].clone(), placeholder.clone());
                            link_values.insert(pair[1].clone(), placeholder);
                        }
                    }
                    for table in dedup(join.tables()) {
                        let mut columns = Vec::new();
                        let mut rendered = Vec::new();
                        for (attr, operand) in values {
                            if attr.table == table {
                                columns.push(self.dialect.ident(attr.attr.as_str()));
                                rendered.push(self.operand(operand));
                            }
                        }
                        for (attr, placeholder) in &link_values {
                            if attr.table == table {
                                columns.push(self.dialect.ident(attr.attr.as_str()));
                                rendered.push(placeholder.clone());
                            }
                        }
                        statements.push(format!(
                            "INSERT INTO {} ({}) VALUES ({});",
                            self.dialect.ident(table.as_str()),
                            columns.join(", "),
                            rendered.join(", ")
                        ));
                    }
                }
                Update::Delete { tables, join, pred } => {
                    if tables.len() <= 1 {
                        for table in tables {
                            statements.push(format!(
                                "DELETE FROM {}{};",
                                self.dialect.ident(table.as_str()),
                                self.correlated_exists(table, join, pred)
                            ));
                        }
                    } else {
                        statements.extend(self.multi_table_delete(
                            tables,
                            join,
                            pred,
                            &mut snapshot_count,
                        ));
                    }
                }
                Update::UpdateAttr {
                    join,
                    pred,
                    attr,
                    value,
                } => {
                    statements.push(format!(
                        "UPDATE {} SET {} = {}{};",
                        self.dialect.ident(attr.table.as_str()),
                        self.dialect.ident(attr.attr.as_str()),
                        self.operand(value),
                        self.correlated_exists(&attr.table, join, pred)
                    ));
                }
                Update::Seq(_) => unreachable!("statements() flattens sequences"),
            }
        }
        statements
    }
}

fn sql_op(op: dbir::ast::CmpOp) -> &'static str {
    use dbir::ast::CmpOp;
    match op {
        CmpOp::Eq => "=",
        CmpOp::Ne => "<>",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}

fn dedup(tables: Vec<TableName>) -> Vec<TableName> {
    let mut out: Vec<TableName> = Vec::new();
    for table in tables {
        if !out.contains(&table) {
            out.push(table);
        }
    }
    out
}

fn decompose(query: &Query) -> (Option<&[QualifiedAttr]>, Option<&Pred>, &JoinChain) {
    match query {
        Query::Project { attrs, input } => {
            let (_, pred, join) = decompose(input);
            (Some(attrs), pred, join)
        }
        Query::Filter { pred, input } => {
            let (attrs, _, join) = decompose(input);
            (attrs, Some(pred), join)
        }
        Query::Join(join) => (None, None, join),
    }
}

/// Renders a single value as a SQL literal in the given dialect.
pub fn value_literal(value: &Value, dialect: &dyn Dialect) -> String {
    match value {
        Value::Null => "NULL".to_string(),
        Value::Int(n) => n.to_string(),
        Value::Str(s) => format!("'{}'", s.as_str().replace('\'', "''")),
        Value::Bytes(b) => {
            let mut out = String::from("X'");
            for byte in b.as_bytes() {
                let _ = write!(out, "{byte:02x}");
            }
            out.push('\'');
            out
        }
        Value::Bool(b) => dialect.bool_literal(*b).to_string(),
        Value::Uid(u) => u.to_string(),
    }
}

/// Renders every row of an instance as dialect-correct `INSERT` statements,
/// one per row, in schema table order.
///
/// Only tables present in `schema` are emitted; each statement names its
/// columns explicitly so it stays valid if the table gains columns later.
/// Used by the migration validator (crate `sqlexec`) to seed a backend with
/// a concrete source instance.
pub fn instance_inserts(
    schema: &Schema,
    instance: &dbir::Instance,
    dialect: &dyn Dialect,
) -> Vec<String> {
    let mut statements = Vec::new();
    for table in schema.tables() {
        let columns: Vec<String> = table
            .columns
            .iter()
            .map(|c| dialect.ident(c.name.as_str()))
            .collect();
        let overriding = if table.columns.iter().any(|c| c.ty == DataType::Id) {
            dialect.insert_overriding_clause()
        } else {
            ""
        };
        for row in instance.rows(&table.name) {
            let values: Vec<String> = row.iter().map(|v| value_literal(v, dialect)).collect();
            statements.push(format!(
                "INSERT INTO {} ({}) {}VALUES ({});",
                dialect.ident(table.name.as_str()),
                columns.join(", "),
                overriding,
                values.join(", ")
            ));
        }
    }
    statements
}

/// Renders one function as SQL.
pub fn function_to_sql(function: &Function, dialect: &dyn Dialect) -> SqlFunction {
    let param_index: BTreeMap<String, usize> = function
        .params
        .iter()
        .enumerate()
        .map(|(i, p)| (p.name.clone(), i + 1))
        .collect();
    let emitter = Emitter {
        dialect,
        param_index,
    };
    let mut fresh_ids = Vec::new();
    let statements = match &function.body {
        FunctionBody::Query(query) => vec![format!("{};", emitter.query(query))],
        FunctionBody::Update(update) => emitter.update(update, &mut fresh_ids),
    };
    SqlFunction {
        name: function.name.clone(),
        is_query: function.is_query(),
        params: function
            .params
            .iter()
            .map(|p| (p.name.clone(), p.ty))
            .collect(),
        fresh_ids,
        statements,
    }
}

/// Renders every function of a program as SQL.
pub fn program_to_sql(program: &Program, dialect: &dyn Dialect) -> Vec<SqlFunction> {
    program
        .functions
        .iter()
        .map(|f| function_to_sql(f, dialect))
        .collect()
}

/// Renders a program as one annotated SQL script.
pub fn render_sql_program(program: &Program, dialect: &dyn Dialect) -> String {
    let mut out = String::new();
    for function in program_to_sql(program, dialect) {
        let kind = if function.is_query { "query" } else { "update" };
        let params: Vec<String> = function
            .params
            .iter()
            .map(|(name, ty)| format!("{name} {}", dialect.type_name(*ty)))
            .collect();
        let _ = writeln!(out, "-- {kind} {}({})", function.name, params.join(", "));
        for fresh in &function.fresh_ids {
            let _ = writeln!(
                out,
                "--   {fresh}: fresh unique identifier, caller-generated"
            );
        }
        for statement in &function.statements {
            let _ = writeln!(out, "{statement}");
        }
        out.push('\n');
    }
    out
}

/// Renders a schema as `CREATE TABLE` DDL that parses back to the same
/// schema via [`crate::ddl::parse_ddl`].
pub fn schema_to_ddl(schema: &Schema, dialect: &dyn Dialect) -> String {
    let mut out = String::new();
    for table in schema.tables() {
        let _ = writeln!(out, "CREATE TABLE {} (", dialect.ident(table.name.as_str()));
        let fk_count = schema
            .foreign_keys()
            .iter()
            .filter(|fk| fk.from.table == table.name)
            .count();
        for (i, column) in table.columns.iter().enumerate() {
            let mut line = format!(
                "    {} {}{}",
                dialect.ident(column.name.as_str()),
                dialect.type_name(column.ty),
                dialect.ddl_column_suffix(column.ty)
            );
            if table.primary_key.as_ref() == Some(&column.name) {
                line.push_str(" PRIMARY KEY");
            }
            if i + 1 < table.columns.len() || fk_count > 0 {
                line.push(',');
            }
            let _ = writeln!(out, "{line}");
        }
        let mut emitted = 0;
        for fk in schema.foreign_keys() {
            if fk.from.table != table.name {
                continue;
            }
            emitted += 1;
            let _ = writeln!(
                out,
                "    FOREIGN KEY ({}) REFERENCES {} ({}){}",
                dialect.ident(fk.from.attr.as_str()),
                dialect.ident(fk.to.table.as_str()),
                dialect.ident(fk.to.attr.as_str()),
                if emitted < fk_count { "," } else { "" }
            );
        }
        let _ = writeln!(out, ");");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbir::parser::parse_program;

    fn motivating() -> (Schema, Program) {
        let schema = Schema::parse(
            "Instructor(InstId: int, IName: string, PicId: id)\n\
             TA(TaId: int, TName: string, PicId: id)\n\
             Picture(PicId: id, Pic: binary)",
        )
        .unwrap();
        let program = parse_program(
            r#"
            update addInstructor(id: int, name: string, pic: binary)
                INSERT INTO Instructor JOIN Picture ON Instructor.PicId = Picture.PicId
                    VALUES (InstId: id, IName: name, Pic: pic);
            query getInstructorInfo(id: int)
                SELECT IName, Pic FROM Instructor JOIN Picture ON Instructor.PicId = Picture.PicId
                    WHERE InstId = id;
            update deleteInstructor(id: int)
                DELETE Instructor, Picture FROM Instructor JOIN Picture ON Instructor.PicId = Picture.PicId
                    WHERE InstId = id;
            "#,
            &schema,
        )
        .unwrap();
        (schema, program)
    }

    #[test]
    fn query_renders_as_parameterized_select() {
        let (_, program) = motivating();
        let sql = function_to_sql(program.function("getInstructorInfo").unwrap(), &Ansi);
        assert!(sql.is_query);
        assert_eq!(
            sql.statements,
            vec![
                "SELECT Instructor.IName, Picture.Pic FROM Instructor JOIN Picture \
                 ON Instructor.PicId = Picture.PicId WHERE Instructor.InstId = :id;"
                    .to_string()
            ]
        );
    }

    #[test]
    fn sqlite_uses_numbered_placeholders() {
        let (_, program) = motivating();
        let sql = function_to_sql(program.function("getInstructorInfo").unwrap(), &Sqlite);
        assert!(sql.statements[0].contains("= ?1"));
    }

    #[test]
    fn insert_over_join_gets_shared_fresh_ids() {
        let (_, program) = motivating();
        let sql = function_to_sql(program.function("addInstructor").unwrap(), &Ansi);
        assert_eq!(sql.fresh_ids, vec!["fresh_id_0".to_string()]);
        assert_eq!(sql.statements.len(), 2);
        assert!(
            sql.statements[0].contains(
                "INSERT INTO Instructor (InstId, IName, PicId) VALUES (:id, :name, :fresh_id_0);"
            ),
            "{:?}",
            sql.statements
        );
        assert!(
            sql.statements[1]
                .contains("INSERT INTO Picture (Pic, PicId) VALUES (:pic, :fresh_id_0);"),
            "{:?}",
            sql.statements
        );
    }

    #[test]
    fn multi_table_delete_snapshots_keys_before_deleting() {
        // Correlated per-table deletes would be wrong here: deleting the
        // Instructor row first would make the Picture delete's subquery
        // match nothing. The lowering must capture keys up front.
        let (_, program) = motivating();
        let sql = function_to_sql(program.function("deleteInstructor").unwrap(), &Ansi);
        assert_eq!(
            sql.statements,
            vec![
                "CREATE TEMPORARY TABLE tmp_delete_0 AS SELECT DISTINCT \
                 Instructor.PicId AS Instructor_PicId, Instructor.InstId AS Instructor_InstId, \
                 Picture.PicId AS Picture_PicId \
                 FROM Instructor JOIN Picture ON Instructor.PicId = Picture.PicId \
                 WHERE Instructor.InstId = :id;"
                    .to_string(),
                "DELETE FROM Instructor WHERE EXISTS (SELECT 1 FROM tmp_delete_0 \
                 WHERE tmp_delete_0.Instructor_PicId = Instructor.PicId \
                 AND tmp_delete_0.Instructor_InstId = Instructor.InstId);"
                    .to_string(),
                "DELETE FROM Picture WHERE EXISTS (SELECT 1 FROM tmp_delete_0 \
                 WHERE tmp_delete_0.Picture_PicId = Picture.PicId);"
                    .to_string(),
                "DROP TABLE tmp_delete_0;".to_string(),
            ]
        );
    }

    #[test]
    fn single_table_statements_stay_simple() {
        let schema = Schema::parse("User(uid: int, name: string)").unwrap();
        let program = parse_program(
            r#"
            update addUser(uid: int, name: string)
                INSERT INTO User VALUES (uid: uid, name: name);
            update renameUser(uid: int, name: string)
                UPDATE User SET name = name WHERE uid = uid;
            update dropUser(uid: int)
                DELETE User FROM User WHERE uid = uid;
            "#,
            &schema,
        )
        .unwrap();
        let sql = program_to_sql(&program, &Ansi);
        assert_eq!(
            sql[0].statements,
            vec![r#"INSERT INTO "User" (uid, name) VALUES (:uid, :name);"#.to_string()]
        );
        assert_eq!(
            sql[1].statements,
            vec![r#"UPDATE "User" SET name = :name WHERE "User".uid = :uid;"#.to_string()]
        );
        assert_eq!(
            sql[2].statements,
            vec![r#"DELETE FROM "User" WHERE "User".uid = :uid;"#.to_string()]
        );
    }

    #[test]
    fn literals_render_per_dialect() {
        let emitter = Emitter {
            dialect: &Ansi,
            param_index: BTreeMap::new(),
        };
        assert_eq!(emitter.literal(&Value::str("o'hara")), "'o''hara'");
        assert_eq!(emitter.literal(&Value::bytes(vec![0xab, 0x01])), "X'ab01'");
        assert_eq!(emitter.literal(&Value::Bool(true)), "TRUE");
        assert_eq!(emitter.literal(&Value::Null), "NULL");
        let sqlite = Emitter {
            dialect: &Sqlite,
            param_index: BTreeMap::new(),
        };
        assert_eq!(sqlite.literal(&Value::Bool(false)), "0");
    }

    #[test]
    fn schema_ddl_roundtrips_through_the_parser() {
        let (schema, _) = motivating();
        for dialect in [&Ansi as &dyn Dialect, &Sqlite, &Postgres, &MySql] {
            let ddl = schema_to_ddl(&schema, dialect);
            let reparsed = crate::ddl::parse_ddl(&ddl).unwrap();
            assert_eq!(
                schema,
                reparsed,
                "dialect {} does not round-trip",
                dialect.name()
            );
        }
    }

    #[test]
    fn reserved_column_names_roundtrip_through_ddl() {
        let mut schema = Schema::new();
        schema
            .add_table(dbir::schema::TableDef::new(
                "Order",
                vec![
                    ("unique", DataType::Int),
                    ("primary", DataType::String),
                    ("foreign", DataType::Int),
                    ("constraint", DataType::Bool),
                    ("check", DataType::Int),
                ],
            ))
            .unwrap();
        for dialect in [&Ansi as &dyn Dialect, &Sqlite, &Postgres, &MySql] {
            let ddl = schema_to_ddl(&schema, dialect);
            let reparsed = crate::ddl::parse_ddl(&ddl).unwrap();
            assert_eq!(
                schema,
                reparsed,
                "dialect {} does not round-trip reserved names:\n{ddl}",
                dialect.name()
            );
        }
    }

    #[test]
    fn mysql_uses_bare_placeholders_backticks_and_auto_increment() {
        let (schema, program) = motivating();
        let sql = function_to_sql(program.function("getInstructorInfo").unwrap(), &MySql);
        assert!(sql.statements[0].contains("= ?"), "{:?}", sql.statements);
        assert!(!sql.statements[0].contains("?1"), "{:?}", sql.statements);

        let ddl = schema_to_ddl(&schema, &MySql);
        assert!(ddl.contains("PicId BIGINT AUTO_INCREMENT"), "{ddl}");

        // Reserved and non-plain identifiers are backtick-quoted.
        assert_eq!(MySql.ident("Instructor"), "Instructor");
        assert_eq!(MySql.ident("order"), "`order`");
        assert_eq!(MySql.ident("weird name"), "`weird name`");
        assert_eq!(MySql.ident("tick`ed"), "`tick``ed`");
        assert_eq!(MySql.placeholder("id", 3), "?");
    }

    #[test]
    fn mysql_dialect_is_registered() {
        for name in ["mysql", "MySQL", "mariadb"] {
            assert_eq!(dialect_by_name(name).unwrap().name(), "mysql");
        }
    }

    #[test]
    fn auto_increment_columns_parse_back_as_surrogate_keys() {
        let schema =
            crate::ddl::parse_ddl("CREATE TABLE T (id BIGINT AUTO_INCREMENT, name VARCHAR(255));")
                .unwrap();
        assert_eq!(
            schema.attr_type(&QualifiedAttr::new("T", "id")),
            Some(DataType::Id)
        );
    }

    #[test]
    fn postgres_emits_identity_surrogate_keys_and_quotes_uppercase() {
        let (schema, _) = motivating();
        let ddl = schema_to_ddl(&schema, &Postgres);
        // Id columns become integer identity columns (the migration fills
        // them with integer skolem expressions), and mixed-case identifiers
        // are quoted because unquoted Postgres identifiers fold to
        // lowercase.
        assert!(
            ddl.contains(r#""PicId" BIGINT GENERATED ALWAYS AS IDENTITY"#),
            "{ddl}"
        );
        assert!(ddl.contains(r#"CREATE TABLE "Instructor""#), "{ddl}");
        assert_eq!(Postgres.ident("lower_case9"), "lower_case9");
        assert_eq!(Postgres.ident("MixedCase"), "\"MixedCase\"");
        assert_eq!(Postgres.placeholder("id", 2), "$2");
    }

    #[test]
    fn postgres_dialect_is_registered() {
        for name in ["postgres", "PostgreSQL", "pg"] {
            assert_eq!(dialect_by_name(name).unwrap().name(), "postgres");
        }
    }

    #[test]
    fn render_program_includes_signatures() {
        let (_, program) = motivating();
        let script = render_sql_program(&program, &Ansi);
        assert!(script.contains("-- query getInstructorInfo(id INTEGER)"));
        assert!(script.contains("-- update addInstructor(id INTEGER, name VARCHAR(255), pic BLOB)"));
        assert!(script.contains("fresh_id_0: fresh unique identifier"));
    }
}
