//! Fixpoint property for DDL ingestion and emission: `parse ∘ emit` is the
//! identity on ingested schemas, for every benchmark schema and every
//! provided dialect.

use benchmarks::all_benchmarks;
use sqlbridge::emit::{schema_to_ddl, Ansi, Dialect, MySql, Postgres, Sqlite};
use sqlbridge::parse_ddl;

#[test]
fn benchmark_schemas_reach_a_ddl_fixpoint() {
    for benchmark in all_benchmarks() {
        for schema in [&benchmark.source_schema, &benchmark.target_schema] {
            for dialect in [&Ansi as &dyn Dialect, &Sqlite, &Postgres, &MySql] {
                // One round trip may normalize foreign-key order (keys are
                // grouped under their owning table); after that the
                // representation must be stable.
                let once = parse_ddl(&schema_to_ddl(schema, dialect)).unwrap_or_else(|e| {
                    panic!(
                        "emitted DDL for {} ({}) does not parse:\n{e}",
                        benchmark.name,
                        dialect.name()
                    )
                });
                let twice = parse_ddl(&schema_to_ddl(&once, dialect)).expect("fixpoint parses");
                assert_eq!(
                    once,
                    twice,
                    "benchmark {} ({}) does not reach a fixpoint",
                    benchmark.name,
                    dialect.name()
                );
                // The round trip must preserve the schema's content even
                // when it normalizes declaration order.
                assert_eq!(schema.table_count(), once.table_count());
                assert_eq!(schema.attr_count(), once.attr_count());
                assert_eq!(schema.tables(), once.tables());
                let fks = |s: &dbir::Schema| {
                    s.foreign_keys()
                        .iter()
                        .cloned()
                        .collect::<std::collections::BTreeSet<_>>()
                };
                assert_eq!(fks(schema), fks(&once));
            }
        }
    }
}

#[test]
fn handwritten_ddl_reaches_a_fixpoint_immediately() {
    let ddl = r#"
        CREATE TABLE Customer (
            id INTEGER PRIMARY KEY,
            name VARCHAR(255),
            vip BOOLEAN,
            photo BLOB,
            region_id UUID,
            FOREIGN KEY (region_id) REFERENCES Region (region_id)
        );
        CREATE TABLE Region (region_id UUID, label TEXT);
    "#;
    let schema = parse_ddl(ddl).unwrap();
    for dialect in [&Ansi as &dyn Dialect, &Sqlite, &Postgres, &MySql] {
        let reparsed = parse_ddl(&schema_to_ddl(&schema, dialect)).unwrap();
        assert_eq!(schema, reparsed, "dialect {}", dialect.name());
    }
}
